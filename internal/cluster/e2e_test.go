package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stardust"
	"stardust/client"
	"stardust/internal/cluster"
	"stardust/internal/gen"
	"stardust/internal/server"
	"stardust/internal/transport"
)

// e2eConfig is the workload every cluster end-to-end test runs: a NormZ
// DWT monitor small enough that index screens are effectively exhaustive,
// so the byte-parity contract is about the merge, not about oversampling
// luck.
func e2eConfig() stardust.Config {
	return stardust.Config{
		Streams: 6, W: 16, Levels: 3, Transform: stardust.DWT, Mode: stardust.Batch,
		Coefficients: 4, Normalization: stardust.NormZ, History: 512,
	}
}

// testBackend is one in-process stardust-server: HTTP surface via
// httptest, binary wire surface on a loopback listener.
type testBackend struct {
	name    string
	hts     *httptest.Server
	tcpAddr string
	stopTCP context.CancelFunc
	tcpDone chan struct{}
}

func (b *testBackend) shardConfig() cluster.ShardConfig {
	return cluster.ShardConfig{Name: b.name, HTTP: b.hts.URL, TCP: b.tcpAddr}
}

// kill tears the backend down hard: HTTP refuses connections, the wire
// listener closes. This is the shard-failure injection for the degraded
// partial-result path.
func (b *testBackend) kill() {
	b.hts.CloseClientConnections()
	b.hts.Close()
	b.stopTCP()
	<-b.tcpDone
}

func startBackend(t *testing.T, name string, cfg stardust.Config) *testBackend {
	t.Helper()
	mon, err := stardust.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm := stardust.WrapSafe(mon)
	srv := server.New(sm)
	hts := httptest.NewServer(srv)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hts.Close()
		t.Fatal(err)
	}
	ts := transport.NewServer(transport.Config{Backend: sm, ReadOnly: srv.IsReadOnly, MaxConns: 16})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ts.Serve(ctx, ln)
	}()
	b := &testBackend{name: name, hts: hts, tcpAddr: ln.Addr().String(), stopTCP: cancel, tcpDone: done}
	t.Cleanup(func() {
		cancel()
		<-done
		hts.Close()
	})
	return b
}

// startReference builds the single-monitor oracle over the same config and
// serves it through the same HTTP stack, so router and reference response
// bytes come off identical code paths.
func startReference(t *testing.T, cfg stardust.Config) *httptest.Server {
	t.Helper()
	mon, err := stardust.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(server.New(stardust.WrapSafe(mon)))
	t.Cleanup(hts.Close)
	return hts
}

// doRequest performs one HTTP request and returns status and raw body.
func doRequest(t *testing.T, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// queryCase is one query-class request replayed against router and
// reference.
type queryCase struct {
	name   string
	method string
	path   string
	body   any
}

func e2eQueryCases(q []float64) []queryCase {
	return []queryCase{
		{"pattern", http.MethodPost, "/pattern", map[string]any{"query": q, "radius": 12.0}},
		{"nearest", http.MethodPost, "/nearest", map[string]any{"query": q, "k": 5}},
		{"correlations", http.MethodGet, "/correlations?level=1&radius=4", nil},
		{"lagged", http.MethodGet, "/correlations?level=1&radius=4&lag=8", nil},
	}
}

// TestClusterE2EByteParity is the tentpole gate: three backend servers
// behind a router must answer every query class with response bytes
// identical to a single monitor that ingested the same samples, with the
// ingest workload split across both transports. Then one shard dies and
// the degrade policy must keep answering, flagged partial.
func TestClusterE2EByteParity(t *testing.T) {
	cfg := e2eConfig()
	backends := []*testBackend{
		startBackend(t, "shard-a", cfg),
		startBackend(t, "shard-b", cfg),
		startBackend(t, "shard-c", cfg),
	}
	shardCfgs := make([]cluster.ShardConfig, len(backends))
	for i, b := range backends {
		shardCfgs[i] = b.shardConfig()
	}

	cl, err := cluster.New(cluster.Config{
		Shards:       shardCfgs,
		Streams:      cfg.Streams,
		VNodes:       32,
		ShardTimeout: 5 * time.Second,
		Partial:      cluster.PartialDegrade,
		Retries:      1,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	router := httptest.NewServer(server.New(cl))
	t.Cleanup(router.Close)

	// Router wire tier: TCP ingest arriving at the router forwards through
	// the same coordinator.
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rts := transport.NewServer(transport.Config{Backend: cl, MaxConns: 16})
	rctx, rcancel := context.WithCancel(context.Background())
	rdone := make(chan struct{})
	go func() {
		defer close(rdone)
		_ = rts.Serve(rctx, rln)
	}()
	t.Cleanup(func() { rcancel(); <-rdone })

	reference := startReference(t, cfg)

	// Mixed-transport ingest: even streams reach the router over the binary
	// wire, odd streams over HTTP. The reference ingests the same samples
	// over its HTTP surface.
	const n = 400
	rng := rand.New(rand.NewSource(99))
	data := gen.RandomWalks(rng, cfg.Streams, n)

	tcpClient, err := client.New(client.WithTCP(rln.Addr().String()), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer tcpClient.Close()
	httpClient, err := client.New(client.WithHTTP(router.URL), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer httpClient.Close()
	refClient, err := client.New(client.WithHTTP(reference.URL), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer refClient.Close()

	for s := 0; s < cfg.Streams; s++ {
		ingest := httpClient
		if s%2 == 0 {
			ingest = tcpClient
		}
		if err := ingest.IngestBatch(s, data[s]); err != nil {
			t.Fatalf("router ingest stream %d: %v", s, err)
		}
		if err := refClient.IngestBatch(s, data[s]); err != nil {
			t.Fatalf("reference ingest stream %d: %v", s, err)
		}
	}

	// Ownership sanity: full-width provisioning means Stats reports the
	// configured stream count and the whole raw history.
	if st := cl.Stats(); st.Streams != cfg.Streams {
		t.Fatalf("cluster stats streams = %d, want %d", st.Streams, cfg.Streams)
	}

	q := make([]float64, 48)
	copy(q, data[4][300:348])

	for _, qc := range e2eQueryCases(q) {
		gotStatus, got := doRequest(t, qc.method, router.URL+qc.path, qc.body)
		wantStatus, want := doRequest(t, qc.method, reference.URL+qc.path, qc.body)
		if gotStatus != wantStatus {
			t.Fatalf("%s: router status %d, reference %d (router body %s)", qc.name, gotStatus, wantStatus, got)
		}
		if wantStatus != http.StatusOK {
			t.Fatalf("%s: reference refused the query: %d %s", qc.name, wantStatus, want)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: response bytes differ\nrouter:    %s\nreference: %s", qc.name, got, want)
		}
	}

	// Query rejections propagate as rejections, not shard failures: a bad
	// level must 422 on both surfaces.
	gotStatus, _ := doRequest(t, http.MethodGet, router.URL+"/correlations?level=99&radius=4", nil)
	wantStatus, _ := doRequest(t, http.MethodGet, reference.URL+"/correlations?level=99&radius=4", nil)
	if gotStatus != wantStatus || gotStatus == http.StatusOK {
		t.Fatalf("bad level: router %d, reference %d; want matching non-200", gotStatus, wantStatus)
	}

	// Shard kill: under the degrade policy every query class keeps
	// answering with 200 and "partial": true, covering only the surviving
	// shards' streams.
	backends[1].kill()
	for _, qc := range e2eQueryCases(q) {
		status, body := doRequest(t, qc.method, router.URL+qc.path, qc.body)
		if status != http.StatusOK {
			t.Fatalf("%s after shard kill: status %d body %s", qc.name, status, body)
		}
		var resp struct {
			Partial bool `json:"partial"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s after shard kill: %v", qc.name, err)
		}
		if !resp.Partial {
			t.Fatalf("%s after shard kill: response not flagged partial: %s", qc.name, body)
		}
	}

	// Ingest owned by the dead shard fails loudly; ingest owned by a
	// survivor keeps working.
	deadOwned, liveOwned := -1, -1
	for s := 0; s < cfg.Streams; s++ {
		if cl.Owner(s) == "shard-b" {
			deadOwned = s
		} else {
			liveOwned = s
		}
	}
	if liveOwned >= 0 {
		if err := cl.Ingest(liveOwned, 1.5); err != nil {
			t.Fatalf("ingest to surviving shard: %v", err)
		}
	}
	if deadOwned >= 0 {
		if err := cl.Ingest(deadOwned, 1.5); err == nil {
			t.Fatal("ingest to dead shard succeeded")
		}
	}
}

// TestClusterPartialFailPolicy: under the fail policy a dead shard turns
// scatter-gather queries into errors instead of partial results.
func TestClusterPartialFailPolicy(t *testing.T) {
	cfg := e2eConfig()
	backends := []*testBackend{
		startBackend(t, "shard-a", cfg),
		startBackend(t, "shard-b", cfg),
	}
	shardCfgs := make([]cluster.ShardConfig, len(backends))
	for i, b := range backends {
		shardCfgs[i] = b.shardConfig()
	}
	cl, err := cluster.New(cluster.Config{
		Shards:       shardCfgs,
		Streams:      cfg.Streams,
		Partial:      cluster.PartialFail,
		ShardTimeout: 2 * time.Second,
		Retries:      1,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	for s := 0; s < cfg.Streams; s++ {
		if err := cl.IngestBatch(s, []float64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	backends[0].kill()
	if _, err := cl.FindPattern(make([]float64, 16), 5); err == nil {
		t.Fatal("fail policy returned a result with a dead shard")
	} else if strings.Contains(err.Error(), "partial") {
		t.Fatalf("fail policy produced a partial-result error: %v", err)
	}
}

// TestClusterShardJoinLeave: the admin join/leave path remaps the ring in
// place; after a leave, departed streams route to survivors and the
// removed shard is gone from the member list.
func TestClusterShardJoinLeave(t *testing.T) {
	cfg := e2eConfig()
	backends := []*testBackend{
		startBackend(t, "shard-a", cfg),
		startBackend(t, "shard-b", cfg),
		startBackend(t, "shard-c", cfg),
	}
	cl, err := cluster.New(cluster.Config{
		Shards:  []cluster.ShardConfig{backends[0].shardConfig(), backends[1].shardConfig()},
		Streams: cfg.Streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	before := make([]string, cfg.Streams)
	for s := range before {
		before[s] = cl.Owner(s)
	}
	if err := cl.AddShard(backends[2].shardConfig()); err != nil {
		t.Fatal(err)
	}
	for s := range before {
		if now := cl.Owner(s); now != before[s] && now != "shard-c" {
			t.Fatalf("stream %d moved %q -> %q on join, not to the joiner", s, before[s], now)
		}
	}
	if err := cl.AddShard(backends[2].shardConfig()); err == nil {
		t.Fatal("double join accepted")
	}
	if err := cl.RemoveShard("shard-c"); err != nil {
		t.Fatal(err)
	}
	for s := range before {
		if now := cl.Owner(s); now != before[s] {
			t.Fatalf("stream %d owner %q after join+leave, want %q restored", s, now, before[s])
		}
	}
	if got := cl.Members(); len(got) != 2 || got[0] != "shard-a" || got[1] != "shard-b" {
		t.Fatalf("members after leave: %v", got)
	}
	if err := cl.RemoveShard("shard-a"); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveShard("shard-b"); err == nil {
		t.Fatal("removed the last shard")
	}
}

// TestClusterHealthProbes: ProbeHealth counts reachable shards and the
// gauge tracks a kill.
func TestClusterHealthProbes(t *testing.T) {
	cfg := e2eConfig()
	backends := []*testBackend{
		startBackend(t, "shard-a", cfg),
		startBackend(t, "shard-b", cfg),
	}
	cl, err := cluster.New(cluster.Config{
		Shards:       []cluster.ShardConfig{backends[0].shardConfig(), backends[1].shardConfig()},
		Streams:      cfg.Streams,
		ShardTimeout: 2 * time.Second,
		Retries:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if got := cl.ProbeHealth(context.Background()); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}
	backends[1].kill()
	if got := cl.ProbeHealth(context.Background()); got != 1 {
		t.Fatalf("healthy after kill = %d, want 1", got)
	}
}

// TestClusterAggregateRouting: single-stream queries route to the owning
// shard and agree with a single monitor.
func TestClusterAggregateRouting(t *testing.T) {
	cfg := stardust.Config{Streams: 5, W: 8, Levels: 3, Transform: stardust.Sum}
	backends := []*testBackend{
		startBackend(t, "shard-a", cfg),
		startBackend(t, "shard-b", cfg),
	}
	cl, err := cluster.New(cluster.Config{
		Shards:  []cluster.ShardConfig{backends[0].shardConfig(), backends[1].shardConfig()},
		Streams: cfg.Streams,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	single, err := stardust.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	data := gen.RandomWalks(rng, cfg.Streams, 200)
	for s := 0; s < cfg.Streams; s++ {
		if err := cl.IngestBatch(s, data[s]); err != nil {
			t.Fatal(err)
		}
		if err := single.IngestBatch(s, data[s]); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < cfg.Streams; s++ {
		want, err := single.AggregateBound(s, 16)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.AggregateBound(s, 16)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("stream %d bound %+v != %+v", s, got, want)
		}
		wantRes, err := single.CheckAggregate(s, 16, 50)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := cl.CheckAggregate(s, 16, 50)
		if err != nil {
			t.Fatal(err)
		}
		if gotRes != wantRes {
			t.Fatalf("stream %d aggregate %+v != %+v", s, gotRes, wantRes)
		}
		if got, want := cl.Now(s), single.Now(s); got != want {
			t.Fatalf("stream %d now %d != %d", s, got, want)
		}
	}
	if _, err := cl.AggregateBound(99, 16); err == nil {
		t.Fatal("out-of-range stream accepted")
	}
	if fmt.Sprint(cl.NumStreams()) != fmt.Sprint(cfg.Streams) {
		t.Fatalf("NumStreams = %d", cl.NumStreams())
	}
}
