package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"stardust"
	"stardust/internal/gen"
	"stardust/internal/wire"
)

func newTestServer(t *testing.T, snapshotPath string) (*httptest.Server, *stardust.SafeMonitor) {
	t.Helper()
	mon, err := stardust.NewSafe(stardust.Config{
		Streams: 3, W: 8, Levels: 4, Transform: stardust.Sum, BoxCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mon, WithSnapshotPath(snapshotPath)))
	t.Cleanup(ts.Close)
	return ts, mon
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestIngestAndAggregate(t *testing.T) {
	ts, mon := newTestServer(t, "")
	// Per-stream ingest: quiet data then a burst on stream 1.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 2
	}
	for i := 80; i < 100; i++ {
		vals[i] = 30
	}
	resp, out := postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 1, "values": vals})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, out)
	}
	if out["values"].(float64) != 100 {
		t.Fatalf("ingest ack = %v", out)
	}
	if mon.Now(1) != 99 {
		t.Fatalf("monitor time = %d", mon.Now(1))
	}

	resp, out = getJSON(t, ts.URL+"/aggregate?stream=1&window=16&threshold=200")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate status %d: %v", resp.StatusCode, out)
	}
	if out["alarm"] != true {
		t.Fatalf("expected alarm, got %v", out)
	}
	if out["exact"].(float64) < 200 {
		t.Fatalf("exact = %v", out["exact"])
	}
}

func TestIngestRows(t *testing.T) {
	ts, mon := newTestServer(t, "")
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	resp, out := postJSON(t, ts.URL+"/ingest", map[string]any{"rows": rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	for s := 0; s < 3; s++ {
		if mon.Now(s) != 1 {
			t.Fatalf("stream %d time = %d", s, mon.Now(s))
		}
	}
}

func TestIngestErrors(t *testing.T) {
	ts, _ := newTestServer(t, "")
	cases := []any{
		map[string]any{}, // neither form
		map[string]any{"stream": 9, "values": []float64{1}}, // bad stream
		map[string]any{"rows": [][]float64{{1}}},            // wrong row width
	}
	for i, body := range cases {
		resp, _ := postJSON(t, ts.URL+"/ingest", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d", resp.StatusCode)
	}
}

func TestAggregateParamErrors(t *testing.T) {
	ts, _ := newTestServer(t, "")
	for _, q := range []string{
		"",                   // all missing
		"stream=0&window=16", // missing threshold
		"stream=0&window=x&threshold=1",
		"stream=99&window=16&threshold=1",
	} {
		resp, _ := getJSON(t, ts.URL+"/aggregate?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
	// Valid params but un-decomposable window → 422.
	resp, _ := getJSON(t, ts.URL+"/aggregate?stream=0&window=7&threshold=1")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad window status %d, want 422", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	ts, _ := newTestServer(t, "")
	postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": make([]float64, 50)})
	resp, out := getJSON(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if out["Streams"].(float64) != 3 {
		t.Fatalf("stats = %v", out)
	}
}

func TestPatternEndpoint(t *testing.T) {
	mon, err := stardust.NewSafe(stardust.Config{
		Streams: 2, W: 8, Levels: 3, Transform: stardust.DWT, Mode: stardust.Batch,
		Coefficients: 4, Normalization: stardust.NormUnit, Rmax: 150, History: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mon))
	defer ts.Close()

	rng := rand.New(rand.NewSource(231))
	data := gen.RandomWalks(rng, 2, 300)
	for i := 0; i < 300; i++ {
		if err := mon.IngestAll([]float64{data[0][i], data[1][i]}); err != nil {
			t.Fatal(err)
		}
	}
	q := make([]float64, 40)
	copy(q, data[0][200:240])
	resp, out := postJSON(t, ts.URL+"/pattern", map[string]any{"query": q, "radius": 0.01})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pattern status %d: %v", resp.StatusCode, out)
	}
	matches := out["matches"].([]any)
	found := false
	for _, m := range matches {
		mm := m.(map[string]any)
		if mm["Stream"].(float64) == 0 && mm["End"].(float64) == 239 {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted pattern not in response: %v", out)
	}
	// Error cases.
	resp, _ = postJSON(t, ts.URL+"/pattern", map[string]any{"query": []float64{}, "radius": 0.1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/pattern", map[string]any{"query": q, "radius": -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad radius status %d", resp.StatusCode)
	}
}

func TestCorrelationsEndpoint(t *testing.T) {
	mon, err := stardust.NewSafe(stardust.Config{
		Streams: 4, W: 16, Levels: 3, Transform: stardust.DWT, Mode: stardust.Batch,
		Coefficients: 4, Normalization: stardust.NormZ,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mon))
	defer ts.Close()

	rng := rand.New(rand.NewSource(232))
	data := gen.CorrelatedWalks(rng, 4, 256, 2, 0.1)
	for i := 0; i < 256; i++ {
		if err := mon.IngestAll([]float64{data[0][i], data[1][i], data[2][i], data[3][i]}); err != nil {
			t.Fatal(err)
		}
	}
	resp, out := getJSON(t, ts.URL+"/correlations?level=2&radius=0.5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	pairs := out["pairs"].([]any)
	if len(pairs) == 0 {
		t.Fatalf("expected correlated pairs, got %v", out)
	}
	// Lagged variant.
	resp, out = getJSON(t, ts.URL+"/correlations?level=2&radius=0.5&lag=16")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lagged status %d: %v", resp.StatusCode, out)
	}
	if _, ok := out["screened"]; !ok {
		t.Fatalf("lagged response missing screened: %v", out)
	}
	// Errors.
	resp, _ = getJSON(t, ts.URL+"/correlations?level=9&radius=0.5")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad level status %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/correlations?level=2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing radius status %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/correlations?level=2&radius=0.5&lag=x")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lag status %d", resp.StatusCode)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	ts, _ := newTestServer(t, path)
	postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}})
	resp, out := postJSON(t, ts.URL+"/snapshot", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %v", resp.StatusCode, out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := stardust.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Now(0) != 8 {
		t.Fatalf("restored time = %d", loaded.Now(0))
	}
}

func TestSnapshotDisabled(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp, _ := postJSON(t, ts.URL+"/snapshot", map[string]any{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
}

func TestMethodRouting(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /ingest status %d", resp.StatusCode)
	}
}

func TestConcurrentHTTPTraffic(t *testing.T) {
	ts, _ := newTestServer(t, "")
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(stream int) {
			var lastErr error
			for i := 0; i < 30; i++ {
				body, _ := json.Marshal(map[string]any{"stream": stream % 3, "values": []float64{float64(i)}})
				resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
				if err != nil {
					lastErr = err
					break
				}
				resp.Body.Close()
			}
			done <- lastErr
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			var lastErr error
			for i := 0; i < 20; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/stats", ts.URL))
				if err != nil {
					lastErr = err
					break
				}
				resp.Body.Close()
			}
			done <- lastErr
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestWatcherBackedServer(t *testing.T) {
	mon, err := stardust.New(stardust.Config{
		Streams: 2, W: 4, Levels: 3, Transform: stardust.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithWatcher(stardust.NewSafeWatcher(mon), ""))
	defer ts.Close()

	// Register an edge-triggered aggregate watch on stream 0, window 8.
	resp, out := postJSON(t, ts.URL+"/watch", map[string]any{
		"type": "aggregate", "stream": 0, "window": 8, "threshold": 100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d: %v", resp.StatusCode, out)
	}
	watchID := int(out["id"].(float64))

	// Quiet data, then a burst, then quiet — through /ingest.
	quiet := make([]float64, 20)
	for i := range quiet {
		quiet[i] = 1
	}
	burst := make([]float64, 10)
	for i := range burst {
		burst[i] = 50
	}
	for _, vals := range [][]float64{quiet, burst, quiet} {
		resp, out := postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": vals})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d: %v", resp.StatusCode, out)
		}
	}

	// Collect events: one alarm, one cleared.
	resp, out = getJSON(t, ts.URL+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d: %v", resp.StatusCode, out)
	}
	events := out["events"].([]any)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (alarm + cleared): %v", len(events), out)
	}
	first := events[0].(map[string]any)
	if int(first["WatchID"].(float64)) != watchID {
		t.Fatalf("event watch id = %v", first["WatchID"])
	}
	next := int(out["next"].(float64))

	// The since cursor skips consumed events.
	resp, out = getJSON(t, fmt.Sprintf("%s/events?since=%d", ts.URL, next))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events-since status %d", resp.StatusCode)
	}
	if len(out["events"].([]any)) != 0 {
		t.Fatalf("since cursor did not skip: %v", out)
	}

	// Bad watch requests.
	resp, _ = postJSON(t, ts.URL+"/watch", map[string]any{"type": "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad type status %d", resp.StatusCode)
	}
	// Invalid watch parameters carry the typed ErrBadWatch rejection
	// (400 + machine-readable code), not the generic 422.
	resp, out = postJSON(t, ts.URL+"/watch", map[string]any{"type": "aggregate", "stream": 9, "window": 8, "threshold": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad stream status %d", resp.StatusCode)
	}
	if code, _ := out["code"].(float64); byte(code) != wire.CodeBadWatch {
		t.Fatalf("bad stream code = %v, want %d", out["code"], wire.CodeBadWatch)
	}
	resp, _ = getJSON(t, ts.URL+"/events?since=x")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since status %d", resp.StatusCode)
	}
}

func TestWatchEndpointsDisabledOnPlainServer(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp, _ := postJSON(t, ts.URL+"/watch", map[string]any{"type": "aggregate"})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("watch status %d, want 501", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/events")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("events status %d, want 501", resp.StatusCode)
	}
}

func TestWatcherBackedServerQueriesStillWork(t *testing.T) {
	mon, err := stardust.New(stardust.Config{
		Streams: 2, W: 4, Levels: 3, Transform: stardust.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithWatcher(stardust.NewSafeWatcher(mon), ""))
	defer ts.Close()
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = 2
	}
	postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": vals})
	resp, out := getJSON(t, ts.URL+"/aggregate?stream=0&window=8&threshold=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["exact"].(float64) != 16 {
		t.Fatalf("exact = %v", out["exact"])
	}
	resp, _ = getJSON(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
}

// TestWatcherBackedRowsIngest: synchronized-rows ingestion also evaluates
// standing queries.
func TestWatcherBackedRowsIngest(t *testing.T) {
	mon, err := stardust.New(stardust.Config{
		Streams: 2, W: 4, Levels: 2, Transform: stardust.Sum,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithWatcher(stardust.NewSafeWatcher(mon), ""))
	defer ts.Close()
	resp, out := postJSON(t, ts.URL+"/watch", map[string]any{
		"type": "aggregate", "stream": 1, "window": 4, "threshold": 100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: %v", out)
	}
	rows := make([][]float64, 10)
	for i := range rows {
		rows[i] = []float64{1, 50} // stream 1 sums 200 per window
	}
	resp, out = postJSON(t, ts.URL+"/ingest", map[string]any{"rows": rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %v", out)
	}
	_, out = getJSON(t, ts.URL+"/events")
	events := out["events"].([]any)
	if len(events) == 0 {
		t.Fatal("rows ingestion produced no events")
	}
	first := events[0].(map[string]any)
	if int(first["Stream"].(float64)) != 1 {
		t.Fatalf("event stream = %v", first["Stream"])
	}
}

func TestHealthEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp, out := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, out)
	}
	resp, out = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || out["status"] != "ready" {
		t.Fatalf("readyz = %d %v", resp.StatusCode, out)
	}
}

func TestReadyzDuringShutdown(t *testing.T) {
	mon, err := stardust.NewSafe(stardust.Config{Streams: 1, W: 8, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(mon)
	s.ready.Store(false)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rec.Code)
	}
	// Liveness stays green: the process is still up.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", rec.Code)
	}
}

// TestPanicRecovery: a handler panic becomes a JSON 500 and the server
// keeps serving.
func TestPanicRecovery(t *testing.T) {
	mon, err := stardust.NewSafe(stardust.Config{Streams: 1, W: 8, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(mon)
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, out := getJSON(t, ts.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status = %d, want 500", resp.StatusCode)
	}
	if out["error"] == nil {
		t.Fatalf("panic response not JSON error: %v", out)
	}
	// The process survived; normal traffic continues.
	resp, _ = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	}
}

func TestIngestStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("wrapped: %w", stardust.ErrBadValue), http.StatusBadRequest},
		{fmt.Errorf("wrapped: %w", stardust.ErrStreamRange), http.StatusBadRequest},
		{fmt.Errorf("wrapped: %w", stardust.ErrQuarantined), http.StatusConflict},
		{errors.New("other"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := ingestStatus(c.err); got != c.want {
			t.Errorf("ingestStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestIngestBadValueSurvives drives a non-finite sample through the
// backend the way a binary ingest path would: the server responds with an
// error status, the process does not die, and subsequent traffic works.
func TestIngestBadValueSurvives(t *testing.T) {
	mon, err := stardust.NewSafe(stardust.Config{Streams: 2, W: 8, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(mon)
	if err := s.mon.Ingest(0, math.NaN()); !errors.Is(err, stardust.ErrBadValue) {
		t.Fatalf("backend NaN err = %v", err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": []float64{1, 2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after bad value = %d", resp.StatusCode)
	}
	if st := mon.Stats(); st.Ingest.Rejected != 1 || st.Ingest.Accepted != 2 {
		t.Fatalf("guard stats = %+v", st.Ingest)
	}
}

func TestSnapshotEndpointKeepsBackup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	ts, _ := newTestServer(t, path)
	postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": []float64{1, 2, 3}})
	if resp, out := postJSON(t, ts.URL+"/snapshot", map[string]any{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot 1: %d %v", resp.StatusCode, out)
	}
	postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": []float64{4}})
	if resp, out := postJSON(t, ts.URL+"/snapshot", map[string]any{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot 2: %d %v", resp.StatusCode, out)
	}
	if _, err := os.Stat(path + ".bak"); err != nil {
		t.Fatalf("no backup: %v", err)
	}
	prev, err := stardust.LoadFile(path + ".bak")
	if err != nil {
		t.Fatal(err)
	}
	if prev.Now(0) != 2 {
		t.Fatalf("backup time = %d, want 2", prev.Now(0))
	}
}

// TestServeLifecycle runs the full Serve loop: auto-snapshots fire while
// serving, and cancellation drains and writes a final snapshot.
func TestServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	mon, err := stardust.NewSafe(stardust.Config{Streams: 2, W: 8, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New(mon, WithSnapshotPath(path))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- s.Serve(ctx, ln, ServeOptions{SnapshotEvery: 10 * time.Millisecond})
	}()
	base := "http://" + ln.Addr().String()

	// Ingest under load while hitting /healthz — it must stay 200.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			body, _ := json.Marshal(map[string]any{"stream": 0, "values": []float64{float64(i)}})
			resp, err := http.Post(base+"/ingest", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	for i := 0; i < 10; i++ {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Errorf("healthz under load: %v", err)
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz under load = %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	wg.Wait()

	// The auto-snapshot loop has produced a loadable file by now.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-snapshot never wrote a file")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	// The final snapshot reflects all ingested values.
	final, err := stardust.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Now(0) != 49 {
		t.Fatalf("final snapshot time = %d, want 49", final.Now(0))
	}
}

// TestServeWithoutSnapshotPath: lifecycle works with persistence disabled.
func TestServeWithoutSnapshotPath(t *testing.T) {
	mon, err := stardust.NewSafe(stardust.Config{Streams: 1, W: 8, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(mon)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, ServeOptions{}) }()
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
}

func TestMetricszEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, "")
	// Drive some work through the HTTP path so the counters are nonzero.
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	if resp, _ := postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": vals}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/aggregate?stream=0&window=8&threshold=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"stardust_ingest_samples_total 16\n",
		"stardust_ingest_accepted_total 16\n",
		"# TYPE stardust_index_node_reads_total counter",
		`stardust_query_total{class="aggregate"} 1`,
		"# TYPE stardust_query_latency_seconds histogram",
		"# TYPE stardust_ingest_batches_total counter",
		"# TYPE stardust_parallel_workers gauge",
		"# TYPE stardust_parallel_queue_depth histogram",
		"# TYPE stardust_parallel_stage_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing %q", want)
		}
	}
}

func TestMetricszMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp, err := http.Post(ts.URL+"/metricsz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metricsz status %d, want 405", resp.StatusCode)
	}
}

func TestPprofIndex(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}
