package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"stardust/internal/obs"
	"stardust/internal/spec"
	"stardust/internal/tenant"
	"stardust/internal/wire"
)

// WithTenants enables the declarative-monitoring tier: the registry
// serves spec load/unload on /specz, tenant admin on /tenantz,
// tenant-attributed ingestion (the "tenant" field of POST /ingest), and
// per-event attribution on GET /events. tm may be nil; when set, its
// stardust_tenant_* series merge into GET /metricsz. Combine with
// WithWatcher on the same watcher the registry wraps.
func WithTenants(reg *tenant.Registry, tm *obs.TenantMetrics) Option {
	return func(s *Server) {
		s.tenants = reg
		s.tenantMetrics = tm
	}
}

// tenantStatus maps the registry's typed errors to HTTP statuses: an
// unknown name is 404, an over-rate tenant is told to back off (429),
// quota breaches are the client's fault (400 for streams, 403 for the
// watch budget), and spec diagnostics are 400.
func tenantStatus(err error) int {
	switch {
	case errors.Is(err, tenant.ErrUnknownTenant), errors.Is(err, tenant.ErrUnknownSpec):
		return http.StatusNotFound
	case errors.Is(err, tenant.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, tenant.ErrWatchQuota), errors.Is(err, tenant.ErrTenantBusy):
		return http.StatusForbidden
	case errors.Is(err, tenant.ErrStreamQuota), errors.Is(err, tenant.ErrExhausted),
		errors.Is(err, tenant.ErrDuplicate):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// tenantCode maps the registry's typed errors to wire nack codes.
func tenantCode(err error) byte {
	switch {
	case errors.Is(err, tenant.ErrUnknownTenant):
		return wire.CodeUnknownTenant
	case errors.Is(err, tenant.ErrUnknownSpec):
		return wire.CodeUnknownSpec
	case errors.Is(err, tenant.ErrRateLimited), errors.Is(err, tenant.ErrStreamQuota),
		errors.Is(err, tenant.ErrWatchQuota), errors.Is(err, tenant.ErrExhausted),
		errors.Is(err, tenant.ErrDuplicate), errors.Is(err, tenant.ErrTenantBusy):
		return wire.CodeQuota
	default:
		return wire.CodeFor(err)
	}
}

// writeTenantErr renders a registry error with its status and code.
func writeTenantErr(w http.ResponseWriter, err error) {
	writeJSON(w, tenantStatus(err), map[string]any{
		"error": err.Error(), "code": tenantCode(err),
	})
}

// writeSpecErr renders a spec load failure. Parse and compile
// diagnostics carry their 1-based source position as line/col fields so
// an operator (or editor integration) can jump straight to the fault.
func writeSpecErr(w http.ResponseWriter, err error) {
	var se *spec.Error
	if errors.As(err, &se) {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": err.Error(), "code": wire.CodeSpec,
			"line": se.Line, "col": se.Col,
		})
		return
	}
	writeTenantErr(w, err)
}

// requireTenants gates the /specz and /tenantz surface.
func (s *Server) requireTenants(w http.ResponseWriter) bool {
	if s.tenants == nil {
		writeErr(w, http.StatusNotImplemented, "spec/tenant admin requires a tenant-tier server (start with -watch and the spec flags)")
		return false
	}
	return true
}

// SetSpecForwarder delegates the /specz and /tenantz surface to h on
// servers without a local registry. The router uses this to broadcast
// spec and tenant admin across its shards; a plain server leaves it nil
// and answers 501.
func (s *Server) SetSpecForwarder(h http.Handler) { s.specForward = h }

// adminGate admits a /specz or /tenantz request: served locally when a
// registry is wired, delegated when a forwarder is, 501 otherwise.
func (s *Server) adminGate(w http.ResponseWriter, r *http.Request) bool {
	if s.tenants != nil {
		return true
	}
	if s.specForward != nil {
		s.specForward.ServeHTTP(w, r)
		return false
	}
	writeErr(w, http.StatusNotImplemented, "spec/tenant admin requires a tenant-tier server (start with -watch and the spec flags)")
	return false
}

// handleTenantIngest routes a tenant-scoped ingest request: the registry
// translates the tenant-local stream id and enforces stream, rate and
// value admission before the shared watcher sees the samples.
func (s *Server) handleTenantIngest(w http.ResponseWriter, req ingestRequest) {
	if !s.requireTenants(w) {
		return
	}
	if req.Stream == nil || len(req.Rows) > 0 {
		writeErr(w, http.StatusBadRequest, "tenant ingest takes stream+values (rows are not tenant-scoped)")
		return
	}
	if err := s.tenants.IngestBatch(req.Tenant, *req.Stream, req.Values); err != nil {
		status := tenantStatus(err)
		if status == http.StatusInternalServerError {
			status = ingestStatus(err) // backend guard rejection, not a tenant error
		}
		writeJSON(w, status, map[string]any{
			"error": err.Error(), "code": tenantCode(err),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"values": len(req.Values)})
}

// handleSpecList serves GET /specz: every loaded unit, or one unit with
// ?name= (404 when absent).
func (s *Server) handleSpecList(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	if name := r.URL.Query().Get("name"); name != "" {
		info, err := s.tenants.Spec(name)
		if err != nil {
			writeTenantErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"specs": s.tenants.Specs()})
}

// specLoadRequest is the body of POST /specz.
type specLoadRequest struct {
	// Name identifies the unit; loading an existing name atomically
	// swaps the old revision for the new one.
	Name string `json:"name"`
	// Source is the spec text (see RUNBOOK.md, "Monitor spec language").
	Source string `json:"source"`
}

// handleSpecLoad serves POST /specz: parse, compile and install a spec
// as one atomic unit. On failure nothing changes and the response
// carries the first diagnostic with its line/col.
func (s *Server) handleSpecLoad(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	var req specLoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if req.Name == "" || req.Source == "" {
		writeErr(w, http.StatusBadRequest, "name and source required")
		return
	}
	if err := s.tenants.Load(req.Name, req.Source); err != nil {
		writeSpecErr(w, err)
		return
	}
	info, err := s.tenants.Spec(req.Name)
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name": info.Name, "watches": info.Watches,
	})
}

// handleSpecUnload serves DELETE /specz?name=unit.
func (s *Server) handleSpecUnload(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, "missing parameter %q", "name")
		return
	}
	if err := s.tenants.Unload(name); err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"unloaded": name})
}

// handleTenantList serves GET /tenantz.
func (s *Server) handleTenantList(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.tenants.Tenants()})
}

// handleTenantAdd serves POST /tenantz: admit a tenant from a Config
// body, allocating the next slice of the backend's stream space.
func (s *Server) handleTenantAdd(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	var cfg tenant.Config
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if err := s.tenants.Add(cfg); err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.tenants.Tenants()})
}

// handleTenantRemove serves DELETE /tenantz?name=acme. Removal is
// refused (403) while loaded specs still watch the tenant's streams.
func (s *Server) handleTenantRemove(w http.ResponseWriter, r *http.Request) {
	if !s.adminGate(w, r) {
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, "missing parameter %q", "name")
		return
	}
	if err := s.tenants.Remove(name); err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}
