// Package server exposes a Monitor over HTTP: JSON ingestion and the three
// query classes, plus introspection and durable snapshots. It wraps a
// SafeMonitor, so ingestion and queries may arrive concurrently.
//
// Endpoints:
//
//	POST /ingest        {"stream": 0, "values": [1, 2, 3]}            — append to one stream
//	POST /ingest        {"rows": [[s0v, s1v, ...], ...]}              — synchronized arrivals
//	GET  /aggregate     ?stream=0&window=40&threshold=300             — one Algorithm-2 check
//	POST /pattern       {"query": [...], "radius": 0.05}              — variable-length similarity
//	POST /nearest       {"query": [...], "k": 3}                      — k-nearest-neighbor patterns
//	GET  /correlations  ?level=3&radius=0.5[&lag=32]                  — correlated pairs
//	POST /cluster/q     {"kind": "pattern"|"correlations"|...}        — coordinator RPC: native result structs for a router's scatter-gather merge
//	GET  /stats                                                       — summary space snapshot
//	GET  /statz                                                       — operational status: readiness, WAL counters, recovery replay
//	GET  /healthz                                                     — liveness (always 200 while the process serves)
//	GET  /readyz                                                      — readiness (503 while shutting down; reports the recovery replay)
//	POST /snapshot                                                    — persist state to the snapshot path (checkpoints: trims the WAL)
//	POST /watch         {"type":"aggregate"|"pattern"|"correlation"}  — register a standing query (watcher-backed servers)
//	GET  /events        ?since=N[&tenant=name]                        — drain standing-query events (watcher-backed servers)
//	GET  /specz         [?name=unit]                                  — list loaded monitor specs (tenant-tier servers)
//	POST /specz         {"name": "unit", "source": "watch ..."}       — load or atomically swap a named spec
//	DELETE /specz       ?name=unit                                    — unload a spec and all its watches
//	GET  /tenantz                                                     — list tenants: stream slices, quotas, watch counts
//	POST /tenantz       {"name": "acme", "streams": 8, ...}           — admit a tenant (allocates a stream slice)
//	DELETE /tenantz     ?name=acme                                    — retire a tenant (refused while specs watch it)
//	GET  /metricsz                                                    — Prometheus text metrics (ingestion, index, query classes)
//	GET  /debug/pprof/                                                — runtime profiles (heap, goroutine, 30s CPU via /debug/pprof/profile)
//	GET  /repl/status                                                 — retained WAL range (primaries, via AttachPrimary)
//	GET  /repl/snapshot                                               — bootstrap snapshot with LSN watermark header (primaries)
//	GET  /wal           ?from=N[&follow=1]                            — raw WAL frame stream for followers (primaries)
//
// A server running as a read replica (SetFollower) rejects POST /ingest
// with 403 — writes belong on the primary — while every query endpoint
// serves normally, and /readyz//statz report the replica's lag.
//
// Errors are JSON {"error": "..."} with a 4xx/5xx status. Ingestion routes
// through the monitor's resilience guard, so malformed samples (NaN, Inf,
// out-of-range stream ids) are 4xx responses, never process-killing
// panics; a recovery middleware converts any residual handler panic into a
// JSON 500. Serve runs the full lifecycle: request timeouts, a periodic
// auto-snapshot loop, and graceful shutdown with a final snapshot.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stardust"
	"stardust/internal/fault"
	"stardust/internal/obs"
	"stardust/internal/replication"
	"stardust/internal/tenant"
	"stardust/internal/wire"
)

// Server routes HTTP requests to a stardust.Interface backend.
type Server struct {
	mon  stardust.Interface
	mux  *http.ServeMux
	path string // snapshot file path ("" disables POST /snapshot)

	ready  atomic.Bool // false while shutting down: /readyz returns 503
	snapMu sync.Mutex  // serializes snapshot file writes

	replay *stardust.ReplayStats // WAL replay that built mon (nil: none ran)

	watcher *stardust.SafeWatcher // non-nil when standing queries are enabled
	evMu    sync.Mutex
	events  []annotatedEvent
	evBase  int // sequence number of events[0]

	tenants       *tenant.Registry   // non-nil when the multi-tenant tier is enabled
	tenantMetrics *obs.TenantMetrics // merged into /metricsz when tenants are wired
	specForward   http.Handler       // registry-less /specz//tenantz delegate (cluster router)

	follower       *replication.Follower // non-nil on a read replica: ingest is 403
	replMetrics    *obs.ReplMetrics      // merged into /metricsz when replication is wired
	netMetrics     *obs.NetMetrics       // merged into /metricsz when the TCP tier is mounted
	clusterMetrics *obs.ClusterMetrics   // merged into /metricsz on a cluster router

	// Replication-primary state. The /repl/* and /wal routes are mounted
	// unconditionally at construction and dispatch through this pointer,
	// because http.ServeMux must not be mutated once requests are in
	// flight — promotion swaps the pointer, not the routes.
	primary atomic.Pointer[replication.Primary]
	retain  uint64 // RetainRecords for the primary (set before attach/promote)

	promoteMu sync.Mutex  // serializes Promote and makes it once-only
	promoted  atomic.Bool // true once this replica has become the primary

	faultInj *fault.Injector // non-nil when fault injection is armed
}

// eventBuffer bounds the retained event backlog.
const eventBuffer = 4096

// Option configures New. Options compose left to right; the zero
// configuration (no options) serves a backend with persistence disabled
// and no standing queries.
type Option func(*Server)

// WithSnapshotPath enables POST /snapshot, the auto-snapshot loop, and
// the final snapshot on shutdown, all writing to path. An empty path
// leaves persistence disabled.
func WithSnapshotPath(path string) Option {
	return func(s *Server) { s.path = path }
}

// WithWatcher enables standing queries: the server claims w's event sink,
// triggered events accumulate in a bounded buffer served by GET /events,
// and POST /watch registers new watches. Pass the same watcher as the
// backend — it is the ingestion surface whose pushes evaluate the
// watches.
func WithWatcher(w *stardust.SafeWatcher) Option {
	return func(s *Server) {
		s.watcher = w
		w.SetEventSink(s.appendEvents)
	}
}

// New builds a server around the monitor. Any stardust.Interface works as
// the backend — a SafeMonitor, a ShardedMonitor for multi-core ingestion,
// or a SafeWatcher (combine with WithWatcher to expose its standing
// queries).
func New(mon stardust.Interface, opts ...Option) *Server {
	s := newServer(mon)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// NewWithWatcher builds a server whose ingestion evaluates the watcher's
// standing queries.
//
// Deprecated: NewWithWatcher is the pre-options constructor, kept as a
// thin wrapper for one release. New code should call
// New(w, WithWatcher(w), WithSnapshotPath(path)).
func NewWithWatcher(w *stardust.SafeWatcher, snapshotPath string) *Server {
	return New(w, WithWatcher(w), WithSnapshotPath(snapshotPath))
}

func newServer(mon stardust.Interface) *Server {
	s := &Server{mon: mon, mux: http.NewServeMux()}
	s.ready.Store(true)
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /aggregate", s.handleAggregate)
	s.mux.HandleFunc("POST /pattern", s.handlePattern)
	s.mux.HandleFunc("POST /nearest", s.handleNearest)
	s.mux.HandleFunc("GET /correlations", s.handleCorrelations)
	s.mux.HandleFunc("POST /cluster/q", s.handleClusterQuery)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /watch", s.handleWatch)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	s.mux.HandleFunc("GET /metricsz", s.handleMetrics)
	// Spec and tenant admin. Mounted unconditionally like /watch: they
	// answer 501 until WithTenants wires a registry behind them.
	s.mux.HandleFunc("GET /specz", s.handleSpecList)
	s.mux.HandleFunc("POST /specz", s.handleSpecLoad)
	s.mux.HandleFunc("DELETE /specz", s.handleSpecUnload)
	s.mux.HandleFunc("GET /tenantz", s.handleTenantList)
	s.mux.HandleFunc("POST /tenantz", s.handleTenantAdd)
	s.mux.HandleFunc("DELETE /tenantz", s.handleTenantRemove)
	// Replication endpoints are mounted up front and return 503 until
	// AttachPrimary (or a promotion) installs a primary behind them; the
	// mux itself is never mutated after requests start flowing.
	s.mux.HandleFunc("GET /repl/status", s.handleReplStatus)
	s.mux.HandleFunc("GET /repl/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /wal", s.handleReplWAL)
	s.mux.HandleFunc("POST /repl/promote", s.handlePromote)
	// Runtime profiling. CPU profiles (?seconds=N) must finish inside the
	// server's write timeout; keep N below ServeOptions.WriteTimeout.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// annotatedEvent is one buffered event plus its spec attribution (empty
// for watches registered through the plain API, so their JSON encoding
// is unchanged).
type annotatedEvent struct {
	stardust.Event
	Tenant string `json:"tenant,omitempty"`
	Watch  string `json:"watch,omitempty"`
}

// appendEvents adds triggered events to the bounded buffer, attributing
// each to its tenant and spec watch when the tenant tier is wired.
// Trigger messages (on_fire/on_clear clauses) are logged here — the
// event stream itself is unchanged by them.
func (s *Server) appendEvents(events []stardust.Event) {
	annotated := make([]annotatedEvent, len(events))
	for i, e := range events {
		annotated[i] = annotatedEvent{Event: e}
		if s.tenants == nil {
			continue
		}
		note := s.tenants.Annotate(e)
		annotated[i].Tenant = note.Tenant
		annotated[i].Watch = note.Watch
		if note.Message != "" {
			log.Printf("trigger: %s (spec %s, watch %s, tenant %q, stream %d, t=%d)",
				note.Message, note.Spec, note.Watch, note.Tenant, e.Stream, e.Time)
		}
	}
	s.evMu.Lock()
	defer s.evMu.Unlock()
	s.events = append(s.events, annotated...)
	if drop := len(s.events) - eventBuffer; drop > 0 {
		s.events = s.events[drop:]
		s.evBase += drop
	}
}

// ServeHTTP implements http.Handler. A recovery middleware converts
// handler panics into JSON 500 responses so one poisoned request cannot
// kill the monitoring process.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// Best effort: if the handler already wrote a header this is a
			// no-op on the status, but the connection still survives.
			writeErr(w, http.StatusInternalServerError, "internal error: %v", rec)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SetReplayStats records the WAL replay that produced the backend, so
// /readyz and /statz can report how the process came up. Call before
// Serve.
func (s *Server) SetReplayStats(stats stardust.ReplayStats) {
	s.replay = &stats
}

// replayInfo renders the recorded replay for JSON endpoints.
func (s *Server) replayInfo() map[string]any {
	if s.replay == nil {
		return nil
	}
	return map[string]any{
		"records":     s.replay.Records,
		"samples":     s.replay.Samples,
		"bytes":       s.replay.Bytes,
		"segments":    s.replay.Segments,
		"torn_bytes":  s.replay.TornBytes,
		"duration_ms": float64(s.replay.Duration) / float64(time.Millisecond),
	}
}

// handleReadyz is the readiness probe: 503 once shutdown has begun so load
// balancers drain before the listener closes. When the backend was built
// by a WAL replay, the response reports it — a restart that replayed a
// large log is visibly distinguishable from a cold start.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting down"})
		return
	}
	resp := map[string]any{"status": "ready"}
	if s.mon.Metrics().WAL.Degraded == 1 {
		// Still 200: the monitor serves and ingests, but in memory only —
		// operators alert on this field (and the stardust_wal_degraded
		// gauge) rather than on probe failures.
		resp["status"] = "degraded"
		resp["wal_degraded"] = true
	}
	if info := s.replayInfo(); info != nil {
		resp["replay"] = info
	}
	if info := s.replicationInfo(); info != nil {
		resp["replication"] = info
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStatz is the operational status endpoint: readiness, stream
// count, the WAL replay that built this process (when any), and the live
// WAL counters from the metrics snapshot — the at-a-glance durability
// view, complementing the Prometheus series on /metricsz.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	wal := s.mon.Metrics().WAL
	resp := map[string]any{
		"ready":   s.ready.Load(),
		"streams": s.mon.NumStreams(),
		"wal": map[string]any{
			"appends":          wal.Appends,
			"appended_bytes":   wal.AppendedBytes,
			"fsyncs":           wal.Fsyncs,
			"rotations":        wal.Rotations,
			"segments_live":    wal.SegmentsLive,
			"segments_trimmed": wal.SegmentsTrimmed,
			"replayed_records": wal.ReplayedRecords,
			"replayed_samples": wal.ReplayedSamples,
			"degraded":         wal.Degraded == 1,
			"dropped_appends":  wal.DroppedAppends,
			"write_retries":    wal.WriteRetries,
			"reattaches":       wal.Reattaches,
		},
	}
	if info := s.replayInfo(); info != nil {
		resp["replay"] = info
	}
	if info := s.replicationInfo(); info != nil {
		resp["replication"] = info
	}
	if s.faultInj != nil {
		c := s.faultInj.Counters()
		resp["fault"] = map[string]any{
			"rules_armed": c.RulesArmed,
			"evals":       c.Evals,
			"injected":    c.Injected,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ingestRequest accepts either per-stream values or synchronized rows.
// A tenant name routes stream+values through the tenant registry, which
// translates the tenant-local stream id and enforces the quota set.
type ingestRequest struct {
	Stream *int        `json:"stream,omitempty"`
	Values []float64   `json:"values,omitempty"`
	Rows   [][]float64 `json:"rows,omitempty"`
	Tenant string      `json:"tenant,omitempty"`
}

// ingestStatus maps the guard's typed errors to HTTP statuses: malformed
// input is the client's fault (400), quarantine is a stateful refusal
// (409), anything else is a server error.
func ingestStatus(err error) int {
	switch {
	case errors.Is(err, stardust.ErrStreamRange), errors.Is(err, stardust.ErrBadValue):
		return http.StatusBadRequest
	case errors.Is(err, stardust.ErrQuarantined):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.IsReadOnly() {
		writeJSON(w, http.StatusForbidden, map[string]any{
			"error": "read-only replica: ingest on the primary",
			"code":  wire.CodeReadOnly,
		})
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if req.Tenant != "" {
		s.handleTenantIngest(w, req)
		return
	}
	switch {
	case len(req.Rows) > 0:
		for i, row := range req.Rows {
			if len(row) != s.mon.NumStreams() {
				writeErr(w, http.StatusBadRequest, "row %d has %d values for %d streams", i, len(row), s.mon.NumStreams())
				return
			}
			if err := s.mon.IngestAll(row); err != nil {
				// Earlier rows (and repaired streams of this row) are
				// already ingested; report how far we got. The code field
				// is the wire nack code of the typed cause, so the client
				// package maps either transport's rejection identically.
				writeJSON(w, ingestStatus(err), map[string]any{
					"error": err.Error(), "code": wire.CodeFor(err), "rows": i,
				})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]int{"rows": len(req.Rows)})
	case req.Stream != nil:
		for i, v := range req.Values {
			if err := s.mon.Ingest(*req.Stream, v); err != nil {
				writeJSON(w, ingestStatus(err), map[string]any{
					"error": err.Error(), "code": wire.CodeFor(err), "values": i,
				})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]int{"values": len(req.Values)})
	default:
		writeErr(w, http.StatusBadRequest, "provide either stream+values or rows")
	}
}

// IsReadOnly reports whether this server currently refuses writes: it is
// following a primary and has not been promoted. The TCP transport's
// ReadOnly hook binds here so both ingest surfaces flip together on
// promotion.
func (s *Server) IsReadOnly() bool {
	return s.follower != nil && !s.promoted.Load()
}

// SetNetMetrics registers the binary transport's instrument set so its
// stardust_net_* series are merged into GET /metricsz. Call before Serve.
func (s *Server) SetNetMetrics(nm *obs.NetMetrics) {
	s.netMetrics = nm
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.Atoi(raw)
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseFloat(raw, 64)
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	stream, err := intParam(r, "stream")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	window, err := intParam(r, "window")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	threshold, err := floatParam(r, "threshold")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if stream < 0 || stream >= s.mon.NumStreams() {
		writeErr(w, http.StatusBadRequest, "stream %d out of range", stream)
		return
	}
	res, err := s.mon.CheckAggregate(stream, window, threshold)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"bound":     map[string]float64{"lo": res.Bound.Lo, "hi": res.Bound.Hi},
		"candidate": res.Candidate,
		"alarm":     res.Alarm,
		"exact":     res.Exact,
	})
}

type patternRequest struct {
	Query  []float64 `json:"query"`
	Radius float64   `json:"radius"`
}

func (s *Server) handlePattern(w http.ResponseWriter, r *http.Request) {
	var req patternRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Query) == 0 || req.Radius <= 0 {
		writeErr(w, http.StatusBadRequest, "query and positive radius required")
		return
	}
	res, err := s.mon.FindPattern(req.Query, req.Radius)
	partial := errors.Is(err, stardust.ErrPartialResult)
	if err != nil && !partial {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := map[string]any{
		"candidates": len(res.Candidates),
		"precision":  res.Precision(),
		"matches":    res.Matches,
	}
	if partial {
		resp["partial"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCorrelations(w http.ResponseWriter, r *http.Request) {
	level, err := intParam(r, "level")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := floatParam(r, "radius")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if lagRaw := r.URL.Query().Get("lag"); lagRaw != "" {
		lag, err := strconv.Atoi(lagRaw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad lag: %v", err)
			return
		}
		pairs, err := s.mon.LaggedCorrelations(level, radius, lag)
		partial := errors.Is(err, stardust.ErrPartialResult)
		if err != nil && !partial {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp := map[string]any{"screened": pairs}
		if partial {
			resp["partial"] = true
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res, err := s.mon.Correlations(level, radius)
	partial := errors.Is(err, stardust.ErrPartialResult)
	if err != nil && !partial {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := map[string]any{
		"screened":  len(res.Candidates),
		"precision": res.Precision(),
		"pairs":     res.Pairs,
	}
	if partial {
		resp["partial"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mon.Stats())
}

// handleMetrics serves the observability snapshot in Prometheus text
// exposition format: ingestion counters and append latency, R*-tree node
// accesses, and per-query-class candidates/verified (pruning power).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.mon.Metrics()
	if s.replMetrics != nil {
		snap.Repl = s.replMetrics.Snapshot()
	}
	if s.netMetrics != nil {
		snap.Net = s.netMetrics.Snapshot()
	}
	if s.clusterMetrics != nil {
		snap.Cluster = s.clusterMetrics.Snapshot()
	}
	if s.tenantMetrics != nil {
		snap.Tenant = s.tenantMetrics.Snapshot()
	}
	if s.faultInj != nil {
		c := s.faultInj.Counters()
		snap.Fault = obs.FaultSnapshot{RulesArmed: c.RulesArmed, Evals: c.Evals, Injected: c.Injected}
	}
	if err := obs.WriteProm(w, snap); err != nil {
		log.Printf("server: writing /metricsz: %v", err)
	}
}

// watchRequest registers a standing query.
type watchRequest struct {
	Type          string    `json:"type"` // "aggregate", "pattern" or "correlation"
	Stream        int       `json:"stream"`
	Window        int       `json:"window"`
	Threshold     float64   `json:"threshold"`
	EdgeTriggered *bool     `json:"edge,omitempty"` // default true
	Query         []float64 `json:"query,omitempty"`
	Radius        float64   `json:"radius,omitempty"`
	Level         int       `json:"level,omitempty"`
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.watcher == nil {
		writeErr(w, http.StatusNotImplemented, "standing queries require a watcher-backed server")
		return
	}
	var req watchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	var id int
	var err error
	switch req.Type {
	case "aggregate":
		edge := true
		if req.EdgeTriggered != nil {
			edge = *req.EdgeTriggered
		}
		id, err = s.watcher.WatchAggregate(req.Stream, req.Window, req.Threshold, edge)
	case "pattern":
		id, err = s.watcher.WatchPattern(req.Query, req.Radius)
	case "correlation":
		id, err = s.watcher.WatchCorrelation(req.Level, req.Radius)
	default:
		writeErr(w, http.StatusBadRequest, "unknown watch type %q", req.Type)
		return
	}
	if err != nil {
		// Nonsensical parameters are the client's fault: 400 with the
		// typed nack code, like the ingest path. Anything else (a core
		// rejection the up-front validation cannot see) stays 422.
		status := http.StatusUnprocessableEntity
		if errors.Is(err, stardust.ErrBadWatch) {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, map[string]any{
			"error": err.Error(), "code": wire.CodeFor(err),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"id": id})
}

// handleEvents returns buffered events with sequence numbers; ?since=N
// skips already-consumed ones.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.watcher == nil {
		writeErr(w, http.StatusNotImplemented, "standing queries require a watcher-backed server")
		return
	}
	since := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad since: %v", err)
			return
		}
		since = v
	}
	// ?tenant= narrows the drain to one tenant's attributed events.
	// Sequence numbers stay global, so a filtered consumer's since cursor
	// works unchanged against the unfiltered stream.
	tenantFilter := r.URL.Query().Get("tenant")
	s.evMu.Lock()
	defer s.evMu.Unlock()
	start := since - s.evBase
	if start < 0 {
		start = 0
	}
	if start > len(s.events) {
		start = len(s.events)
	}
	type seqEvent struct {
		Seq int `json:"seq"`
		annotatedEvent
	}
	out := make([]seqEvent, 0, len(s.events)-start)
	for i := start; i < len(s.events); i++ {
		if tenantFilter != "" && s.events[i].Tenant != tenantFilter {
			continue
		}
		out = append(out, seqEvent{Seq: s.evBase + i, annotatedEvent: s.events[i]})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"next":   s.evBase + len(s.events),
		"events": out,
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.path == "" {
		writeErr(w, http.StatusNotImplemented, "no snapshot path configured")
		return
	}
	if err := s.SnapshotNow(); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"path": s.path})
}

// SnapshotNow persists the monitor state to the configured snapshot path
// crash-safely (temp file + fsync + rename, previous snapshot kept as
// .bak). Backends that checkpoint (all monitor flavors do) additionally
// trim write-ahead-log segments the snapshot covers, so the auto-snapshot
// loop bounds WAL growth. Concurrent calls — the HTTP endpoint, the
// auto-snapshot loop and the shutdown path — serialize on an internal
// mutex.
func (s *Server) SnapshotNow() error {
	if s.path == "" {
		return fmt.Errorf("server: no snapshot path configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if c, ok := s.mon.(stardust.Checkpointer); ok {
		return c.Checkpoint(s.path)
	}
	return stardust.WriteSnapshotFile(s.mon, s.path)
}

// ServeOptions tunes the Serve lifecycle. The zero value selects the
// documented defaults.
type ServeOptions struct {
	// SnapshotEvery is the auto-snapshot period; 0 disables the loop.
	// Ignored when no snapshot path is configured.
	SnapshotEvery time.Duration
	// ReadTimeout bounds reading a full request including the body
	// (default 15s).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response (default 30s).
	WriteTimeout time.Duration
	// ShutdownGrace bounds connection draining after ctx is cancelled
	// (default 10s).
	ShutdownGrace time.Duration
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 15 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.ShutdownGrace == 0 {
		o.ShutdownGrace = 10 * time.Second
	}
	return o
}

// Serve runs the server's full lifecycle on the listener until ctx is
// cancelled: requests are bounded by read/write timeouts, state is
// auto-snapshotted every opts.SnapshotEvery, and on cancellation the
// server flips /readyz to 503, drains in-flight connections, and writes a
// final snapshot before returning. The caller owns the listener's
// address; pass a net.Listener from net.Listen (or httptest).
func (s *Server) Serve(ctx context.Context, ln net.Listener, opts ServeOptions) error {
	opts = opts.withDefaults()
	httpSrv := &http.Server{
		Handler:           s,
		ReadTimeout:       opts.ReadTimeout,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      opts.WriteTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	// Auto-snapshot loop: losing at most SnapshotEvery of stream history
	// on a hard crash is the durability contract.
	snapDone := make(chan struct{})
	snapCtx, stopSnaps := context.WithCancel(ctx)
	go func() {
		defer close(snapDone)
		if s.path == "" || opts.SnapshotEvery <= 0 {
			return
		}
		ticker := time.NewTicker(opts.SnapshotEvery)
		defer ticker.Stop()
		for {
			select {
			case <-snapCtx.Done():
				return
			case <-ticker.C:
				if err := s.SnapshotNow(); err != nil {
					log.Printf("server: auto-snapshot: %v", err)
				}
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopSnaps()
		<-snapDone
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop admitting (readiness 503), drain, then take
	// the final snapshot so a SIGTERM loses nothing.
	s.ready.Store(false)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.ShutdownGrace)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	stopSnaps()
	<-snapDone
	if s.path != "" {
		if snapErr := s.SnapshotNow(); snapErr != nil {
			log.Printf("server: final snapshot: %v", snapErr)
			if err == nil {
				err = snapErr
			}
		}
	}
	return err
}
