// Package server exposes a Monitor over HTTP: JSON ingestion and the three
// query classes, plus introspection and durable snapshots. It wraps a
// SafeMonitor, so ingestion and queries may arrive concurrently.
//
// Endpoints:
//
//	POST /ingest        {"stream": 0, "values": [1, 2, 3]}            — append to one stream
//	POST /ingest        {"rows": [[s0v, s1v, ...], ...]}              — synchronized arrivals
//	GET  /aggregate     ?stream=0&window=40&threshold=300             — one Algorithm-2 check
//	POST /pattern       {"query": [...], "radius": 0.05}              — variable-length similarity
//	GET  /correlations  ?level=3&radius=0.5[&lag=32]                  — correlated pairs
//	GET  /stats                                                       — summary space snapshot
//	POST /snapshot                                                    — persist state to the snapshot path
//	POST /watch         {"type":"aggregate", "stream":0, ...}         — register a standing query (watcher-backed servers)
//	GET  /events        ?since=N                                      — drain standing-query events (watcher-backed servers)
//
// Errors are JSON {"error": "..."} with a 4xx/5xx status.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"

	"stardust"
)

// Backend is the locked monitor surface the server serves. Both
// stardust.SafeMonitor (plain ingestion) and stardust.SafeWatcher
// (ingestion evaluating standing queries) implement it.
type Backend interface {
	Append(stream int, v float64)
	AppendAll(vs []float64)
	NumStreams() int
	Now(stream int) int64
	CheckAggregate(stream, window int, threshold float64) (stardust.AggregateResult, error)
	FindPattern(q []float64, r float64) (stardust.PatternResult, error)
	Correlations(level int, r float64) (stardust.CorrelationResult, error)
	LaggedCorrelations(level int, r float64, maxLag int) ([]stardust.CorrPair, error)
	Stats() stardust.Stats
	Snapshot(w io.Writer) error
}

// monitorBackend adapts SafeMonitor's event-less ingestion.
type monitorBackend struct{ *stardust.SafeMonitor }

// watcherBackend adapts SafeWatcher, capturing the events its pushes
// produce so the server can expose them.
type watcherBackend struct {
	*stardust.SafeWatcher
	sink func([]stardust.Event)
}

func (b watcherBackend) Append(stream int, v float64) {
	events, err := b.SafeWatcher.Push(stream, v)
	if err == nil && len(events) > 0 {
		b.sink(events)
	}
}

func (b watcherBackend) AppendAll(vs []float64) {
	events, err := b.SafeWatcher.AppendAll(vs)
	if err == nil && len(events) > 0 {
		b.sink(events)
	}
}

// Server routes HTTP requests to a Backend.
type Server struct {
	mon  Backend
	mux  *http.ServeMux
	path string // snapshot file path ("" disables POST /snapshot)

	watcher *stardust.SafeWatcher // non-nil when standing queries are enabled
	evMu    sync.Mutex
	events  []stardust.Event
	evBase  int // sequence number of events[0]
}

// eventBuffer bounds the retained event backlog.
const eventBuffer = 4096

// New builds a server around the monitor. snapshotPath may be empty to
// disable persistence.
func New(mon *stardust.SafeMonitor, snapshotPath string) *Server {
	return newServer(monitorBackend{mon}, nil, snapshotPath)
}

// NewWithWatcher builds a server whose ingestion evaluates the watcher's
// standing queries; triggered events accumulate in a bounded buffer served
// by GET /events, and new watches can be registered via POST /watch.
func NewWithWatcher(w *stardust.SafeWatcher, snapshotPath string) *Server {
	s := newServer(nil, w, snapshotPath)
	s.mon = watcherBackend{SafeWatcher: w, sink: s.appendEvents}
	return s
}

func newServer(mon Backend, w *stardust.SafeWatcher, snapshotPath string) *Server {
	s := &Server{mon: mon, mux: http.NewServeMux(), path: snapshotPath, watcher: w}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /aggregate", s.handleAggregate)
	s.mux.HandleFunc("POST /pattern", s.handlePattern)
	s.mux.HandleFunc("GET /correlations", s.handleCorrelations)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /watch", s.handleWatch)
	s.mux.HandleFunc("GET /events", s.handleEvents)
	return s
}

// appendEvents adds triggered events to the bounded buffer.
func (s *Server) appendEvents(events []stardust.Event) {
	s.evMu.Lock()
	defer s.evMu.Unlock()
	s.events = append(s.events, events...)
	if drop := len(s.events) - eventBuffer; drop > 0 {
		s.events = s.events[drop:]
		s.evBase += drop
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ingestRequest accepts either per-stream values or synchronized rows.
type ingestRequest struct {
	Stream *int        `json:"stream,omitempty"`
	Values []float64   `json:"values,omitempty"`
	Rows   [][]float64 `json:"rows,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	switch {
	case len(req.Rows) > 0:
		for i, row := range req.Rows {
			if len(row) != s.mon.NumStreams() {
				writeErr(w, http.StatusBadRequest, "row %d has %d values for %d streams", i, len(row), s.mon.NumStreams())
				return
			}
			s.mon.AppendAll(row)
		}
		writeJSON(w, http.StatusOK, map[string]int{"rows": len(req.Rows)})
	case req.Stream != nil:
		if *req.Stream < 0 || *req.Stream >= s.mon.NumStreams() {
			writeErr(w, http.StatusBadRequest, "stream %d out of range [0, %d)", *req.Stream, s.mon.NumStreams())
			return
		}
		for _, v := range req.Values {
			s.mon.Append(*req.Stream, v)
		}
		writeJSON(w, http.StatusOK, map[string]int{"values": len(req.Values)})
	default:
		writeErr(w, http.StatusBadRequest, "provide either stream+values or rows")
	}
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.Atoi(raw)
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	return strconv.ParseFloat(raw, 64)
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	stream, err := intParam(r, "stream")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	window, err := intParam(r, "window")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	threshold, err := floatParam(r, "threshold")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if stream < 0 || stream >= s.mon.NumStreams() {
		writeErr(w, http.StatusBadRequest, "stream %d out of range", stream)
		return
	}
	res, err := s.mon.CheckAggregate(stream, window, threshold)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"bound":     map[string]float64{"lo": res.Bound.Lo, "hi": res.Bound.Hi},
		"candidate": res.Candidate,
		"alarm":     res.Alarm,
		"exact":     res.Exact,
	})
}

type patternRequest struct {
	Query  []float64 `json:"query"`
	Radius float64   `json:"radius"`
}

func (s *Server) handlePattern(w http.ResponseWriter, r *http.Request) {
	var req patternRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Query) == 0 || req.Radius <= 0 {
		writeErr(w, http.StatusBadRequest, "query and positive radius required")
		return
	}
	res, err := s.mon.FindPattern(req.Query, req.Radius)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"candidates": len(res.Candidates),
		"precision":  res.Precision(),
		"matches":    res.Matches,
	})
}

func (s *Server) handleCorrelations(w http.ResponseWriter, r *http.Request) {
	level, err := intParam(r, "level")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := floatParam(r, "radius")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if lagRaw := r.URL.Query().Get("lag"); lagRaw != "" {
		lag, err := strconv.Atoi(lagRaw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad lag: %v", err)
			return
		}
		pairs, err := s.mon.LaggedCorrelations(level, radius, lag)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"screened": pairs})
		return
	}
	res, err := s.mon.Correlations(level, radius)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"screened":  len(res.Candidates),
		"precision": res.Precision(),
		"pairs":     res.Pairs,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mon.Stats())
}

// watchRequest registers a standing query.
type watchRequest struct {
	Type          string    `json:"type"` // "aggregate" or "pattern"
	Stream        int       `json:"stream"`
	Window        int       `json:"window"`
	Threshold     float64   `json:"threshold"`
	EdgeTriggered *bool     `json:"edge,omitempty"` // default true
	Query         []float64 `json:"query,omitempty"`
	Radius        float64   `json:"radius,omitempty"`
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if s.watcher == nil {
		writeErr(w, http.StatusNotImplemented, "standing queries require a watcher-backed server")
		return
	}
	var req watchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	var id int
	var err error
	switch req.Type {
	case "aggregate":
		edge := true
		if req.EdgeTriggered != nil {
			edge = *req.EdgeTriggered
		}
		id, err = s.watcher.WatchAggregate(req.Stream, req.Window, req.Threshold, edge)
	case "pattern":
		id, err = s.watcher.WatchPattern(req.Query, req.Radius)
	default:
		writeErr(w, http.StatusBadRequest, "unknown watch type %q", req.Type)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"id": id})
}

// handleEvents returns buffered events with sequence numbers; ?since=N
// skips already-consumed ones.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.watcher == nil {
		writeErr(w, http.StatusNotImplemented, "standing queries require a watcher-backed server")
		return
	}
	since := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad since: %v", err)
			return
		}
		since = v
	}
	s.evMu.Lock()
	defer s.evMu.Unlock()
	start := since - s.evBase
	if start < 0 {
		start = 0
	}
	if start > len(s.events) {
		start = len(s.events)
	}
	type seqEvent struct {
		Seq int `json:"seq"`
		stardust.Event
	}
	out := make([]seqEvent, 0, len(s.events)-start)
	for i := start; i < len(s.events); i++ {
		out = append(out, seqEvent{Seq: s.evBase + i, Event: s.events[i]})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"next":   s.evBase + len(s.events),
		"events": out,
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.path == "" {
		writeErr(w, http.StatusNotImplemented, "no snapshot path configured")
		return
	}
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "creating snapshot: %v", err)
		return
	}
	// Snapshot under the monitor's read lock via the public wrapper.
	err = func() error {
		defer f.Close()
		return s.mon.Snapshot(f)
	}()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "writing snapshot: %v", err)
		return
	}
	if err := os.Rename(tmp, s.path); err != nil {
		writeErr(w, http.StatusInternalServerError, "committing snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"path": s.path})
}
