package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stardust"
	"stardust/internal/obs"
	"stardust/internal/tenant"
	"stardust/internal/wire"
)

// newTenantServer boots a watcher-backed server with a tenant registry
// over a 16-stream SUM backend (aggregate watches need SUM extents).
func newTenantServer(t *testing.T) (*httptest.Server, *tenant.Registry) {
	t.Helper()
	mon, err := stardust.New(stardust.Config{
		Streams: 16, W: 8, Levels: 4, Transform: stardust.Sum, BoxCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := stardust.NewSafeWatcher(mon)
	tm := obs.NewTenantMetrics()
	reg := tenant.New(sw, tm, time.Now)
	ts := httptest.NewServer(New(sw, WithWatcher(sw), WithTenants(reg, tm)))
	t.Cleanup(ts.Close)
	return ts, reg
}

func deleteJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func wantCode(t *testing.T, body map[string]any, code byte) {
	t.Helper()
	got, ok := body["code"].(float64)
	if !ok || byte(got) != code {
		t.Fatalf("code = %v, want %d (body %v)", body["code"], code, body)
	}
}

func TestSpecAdminRequiresRegistry(t *testing.T) {
	mon, err := stardust.NewSafe(stardust.Config{
		Streams: 2, W: 8, Levels: 4, Transform: stardust.Sum, BoxCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(mon))
	defer ts.Close()
	for _, path := range []string{"/specz", "/tenantz"} {
		resp, _ := getJSON(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("GET %s without registry: status %d, want 501", path, resp.StatusCode)
		}
	}
}

func TestTenantAdminLifecycle(t *testing.T) {
	ts, _ := newTenantServer(t)

	resp, body := postJSON(t, ts.URL+"/tenantz", tenant.Config{Name: "acme", Streams: 4, MaxWatches: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add tenant: status %d body %v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/tenantz", tenant.Config{Name: "acme", Streams: 4})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate tenant: status %d, want 400", resp.StatusCode)
	}

	resp, body = getJSON(t, ts.URL+"/tenantz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list tenants: status %d", resp.StatusCode)
	}
	tenants, _ := body["tenants"].([]any)
	if len(tenants) != 1 {
		t.Fatalf("tenants = %v, want one entry", body["tenants"])
	}

	resp, body = deleteJSON(t, ts.URL+"/tenantz?name=ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove unknown tenant: status %d, want 404", resp.StatusCode)
	}
	wantCode(t, body, wire.CodeUnknownTenant)

	resp, _ = deleteJSON(t, ts.URL+"/tenantz?name=acme")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove tenant: status %d", resp.StatusCode)
	}
}

func TestSpecLoadRejectsWithPosition(t *testing.T) {
	ts, _ := newTenantServer(t)
	resp, body := postJSON(t, ts.URL+"/specz", specLoadRequest{
		Name:   "bad",
		Source: "watch a on stream 0 aggregate window 8\nthreshold oops;",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d body %v, want 400", resp.StatusCode, body)
	}
	wantCode(t, body, wire.CodeSpec)
	if line, _ := body["line"].(float64); line != 2 {
		t.Errorf("line = %v, want 2 (body %v)", body["line"], body)
	}
	if _, ok := body["col"].(float64); !ok {
		t.Errorf("body missing col: %v", body)
	}
	// A rejected load leaves nothing behind.
	if _, body = getJSON(t, ts.URL+"/specz"); body["specs"] != nil {
		if specs, _ := body["specs"].([]any); len(specs) != 0 {
			t.Errorf("specs after rejected load = %v, want none", body["specs"])
		}
	}
}

func TestSpecLifecycleOverHTTP(t *testing.T) {
	ts, reg := newTenantServer(t)
	if err := reg.Add(tenant.Config{Name: "acme", Streams: 4, MaxWatches: 8}); err != nil {
		t.Fatal(err)
	}

	source := strings.Join([]string{
		`watch burst on stream 0..1 aggregate window 8 threshold 3 edge;`,
		`tenant acme {`,
		`    watch hot on stream 0 aggregate window 8 threshold 2 on_fire "acme hot";`,
		`}`,
	}, "\n")
	resp, body := postJSON(t, ts.URL+"/specz", specLoadRequest{Name: "base", Source: source})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load spec: status %d body %v", resp.StatusCode, body)
	}
	if n, _ := body["watches"].(float64); n != 3 {
		t.Fatalf("watches = %v, want 3 (range expands)", body["watches"])
	}

	resp, body = getJSON(t, ts.URL+"/specz?name=base")
	if resp.StatusCode != http.StatusOK || body["name"] != "base" {
		t.Fatalf("get spec: status %d body %v", resp.StatusCode, body)
	}
	resp, _ = getJSON(t, ts.URL+"/specz?name=ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get unknown spec: status %d, want 404", resp.StatusCode)
	}

	// The tenant is busy while the spec watches its streams.
	resp, body = deleteJSON(t, ts.URL+"/tenantz?name=acme")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("remove busy tenant: status %d body %v, want 403", resp.StatusCode, body)
	}

	resp, _ = deleteJSON(t, ts.URL+"/specz?name=base")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unload: status %d", resp.StatusCode)
	}
	resp, _ = deleteJSON(t, ts.URL+"/tenantz?name=acme")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove tenant after unload: status %d", resp.StatusCode)
	}
}

func TestTenantIngestOverHTTP(t *testing.T) {
	ts, reg := newTenantServer(t)
	if err := reg.Add(tenant.Config{Name: "acme", Streams: 2, RatePerSec: 1000, Burst: 4}); err != nil {
		t.Fatal(err)
	}

	stream := 0
	resp, body := postJSON(t, ts.URL+"/ingest", map[string]any{
		"tenant": "acme", "stream": stream, "values": []float64{1, 2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant ingest: status %d body %v", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/ingest", map[string]any{
		"tenant": "ghost", "stream": stream, "values": []float64{1},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant ingest: status %d, want 404", resp.StatusCode)
	}
	wantCode(t, body, wire.CodeUnknownTenant)

	resp, body = postJSON(t, ts.URL+"/ingest", map[string]any{
		"tenant": "acme", "stream": 7, "values": []float64{1},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-slice ingest: status %d, want 400", resp.StatusCode)
	}
	wantCode(t, body, wire.CodeQuota)

	// Burst of 4 tokens: a 5-value batch is refused as a unit.
	resp, body = postJSON(t, ts.URL+"/ingest", map[string]any{
		"tenant": "acme", "stream": stream, "values": []float64{1, 2, 3, 4, 5},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate ingest: status %d body %v, want 429", resp.StatusCode, body)
	}
	wantCode(t, body, wire.CodeQuota)
}

func TestEventsCarryTenantAttribution(t *testing.T) {
	ts, reg := newTenantServer(t)
	if err := reg.Add(tenant.Config{Name: "acme", Streams: 2, MaxWatches: 4}); err != nil {
		t.Fatal(err)
	}
	source := `tenant acme { watch hot on stream 0 aggregate window 8 threshold 5 on_fire "acme is hot"; }`
	if err := reg.Load("alerts", source); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, ts.URL+"/ingest", map[string]any{
			"tenant": "acme", "stream": 0, "values": []float64{10},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d body %v", i, resp.StatusCode, body)
		}
	}

	resp, body := getJSON(t, ts.URL+"/events?tenant=acme")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	events, _ := body["events"].([]any)
	if len(events) == 0 {
		t.Fatalf("no events for tenant acme: %v", body)
	}
	first, _ := events[0].(map[string]any)
	ev, _ := first["event"].(map[string]any)
	if ev == nil {
		ev = first
	}
	if ev["tenant"] != "acme" || ev["watch"] != "hot" {
		t.Errorf("event attribution = tenant %v watch %v, want acme/hot (%v)", ev["tenant"], ev["watch"], first)
	}

	// Filtering on another tenant hides them.
	_, body = getJSON(t, ts.URL+"/events?tenant=other")
	if events, _ := body["events"].([]any); len(events) != 0 {
		t.Errorf("events for other tenant = %v, want none", body["events"])
	}
}

func TestMetricsExposeTenantSeries(t *testing.T) {
	ts, reg := newTenantServer(t)
	if err := reg.Add(tenant.Config{Name: "acme", Streams: 2}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Ingest("acme", 0, 1.5); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metricsz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	text := string(buf[:n])
	want := fmt.Sprintf("stardust_tenant_samples_total{tenant=%q} 1", "acme")
	if !strings.Contains(text, want) {
		t.Errorf("prom output missing %q", want)
	}
}
