package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stardust"
	"stardust/internal/fault"
	"stardust/internal/replication"
	"stardust/internal/wal"
)

// deadFS is a wal.FS whose writes fail while broken is set; everything
// else passes through to the real filesystem.
type deadFS struct {
	base   wal.FS
	broken *atomic.Bool
}

func (d *deadFS) MkdirAll(dir string, perm os.FileMode) error { return d.base.MkdirAll(dir, perm) }
func (d *deadFS) ReadDir(dir string) ([]os.DirEntry, error)   { return d.base.ReadDir(dir) }
func (d *deadFS) ReadFile(path string) ([]byte, error)        { return d.base.ReadFile(path) }
func (d *deadFS) Truncate(path string, size int64) error      { return d.base.Truncate(path, size) }
func (d *deadFS) Remove(path string) error                    { return d.base.Remove(path) }

func (d *deadFS) OpenFile(path string, flag int, perm os.FileMode) (wal.File, error) {
	if d.broken.Load() {
		return nil, fmt.Errorf("deadFS: broken")
	}
	f, err := d.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &deadFile{f: f, broken: d.broken}, nil
}

type deadFile struct {
	f      wal.File
	broken *atomic.Bool
}

func (f *deadFile) Write(p []byte) (int, error) {
	if f.broken.Load() {
		return 0, fmt.Errorf("deadFS: broken")
	}
	return f.f.Write(p)
}
func (f *deadFile) Sync() error  { return f.f.Sync() }
func (f *deadFile) Close() error { return f.f.Close() }

// TestPromoteEndpointNotReplica: /repl/promote and the primary dispatch
// routes refuse servers with no replication role.
func TestPromoteEndpointNotReplica(t *testing.T) {
	ts, _ := newTestServer(t, "")
	resp, err := http.Post(ts.URL+"/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("promote on non-replica: got %d, want 503", resp.StatusCode)
	}
	for _, path := range []string{"/repl/status", "/repl/snapshot", "/wal?from=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s on non-primary: got %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestDegradedReadyz: a WAL disk failure under the degrade policy keeps
// ingestion acking and flips /readyz, /statz and /metricsz to the
// degraded view operators alert on.
func TestDegradedReadyz(t *testing.T) {
	broken := &atomic.Bool{}
	cfg := stardust.Config{
		Streams: 2, W: 8, Levels: 3,
		Durability: stardust.DurabilityConfig{
			Dir:           t.TempDir(),
			Fsync:         stardust.FsyncNone,
			FailPolicy:    stardust.WALFailDegrade,
			FS:            &deadFS{base: wal.OSFS{}, broken: broken},
			RetryAttempts: 1,
			RetryBackoff:  time.Microsecond,
			ProbeInterval: time.Hour, // hold degraded mode open for the assertions
		},
	}
	m, err := stardust.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	sm := stardust.WrapSafe(m)
	ts := httptest.NewServer(New(sm))
	t.Cleanup(ts.Close)

	resp, body := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("healthy readyz: got %d %v", resp.StatusCode, body)
	}

	broken.Store(true)
	presp, pbody := postJSON(t, ts.URL+"/ingest", map[string]any{"stream": 0, "values": []float64{1.5}})
	if presp.StatusCode != http.StatusOK || pbody["values"].(float64) != 1 {
		t.Fatalf("degraded ingest must still ack: got %d %v", presp.StatusCode, pbody)
	}
	if !m.WALDegraded() {
		t.Fatal("monitor not degraded after append on dead disk")
	}

	resp, body = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded readyz must stay 200 (serving, in memory): got %d", resp.StatusCode)
	}
	if body["status"] != "degraded" || body["wal_degraded"] != true {
		t.Fatalf("degraded readyz: got %v", body)
	}

	_, statz := getJSON(t, ts.URL+"/statz")
	walInfo, ok := statz["wal"].(map[string]any)
	if !ok {
		t.Fatalf("statz has no wal section: %v", statz)
	}
	if walInfo["degraded"] != true {
		t.Fatalf("statz wal.degraded: got %v", walInfo["degraded"])
	}
	if n, _ := walInfo["dropped_appends"].(float64); n < 1 {
		t.Fatalf("statz wal.dropped_appends: got %v, want >= 1", walInfo["dropped_appends"])
	}

	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "stardust_wal_degraded 1") {
		t.Fatalf("metricsz missing stardust_wal_degraded 1:\n%s", raw)
	}
}

// TestPromoteEndpointFullPath drives promotion over HTTP: a mirrored
// replica of a live primary answers POST /repl/promote with 200 exactly
// once (409 after), opens ingestion, reports role "primary" on /readyz,
// and serves /wal to followers.
func TestPromoteEndpointFullPath(t *testing.T) {
	// Primary.
	pcfg := stardust.Config{Streams: 2, W: 8, Levels: 3}
	pcfg.Durability = stardust.DurabilityConfig{Dir: t.TempDir(), Fsync: stardust.FsyncNone}
	pm, err := stardust.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pm.Close() })
	psm := stardust.WrapSafe(pm)
	psrv := New(psm)
	psrv.AttachPrimary(pm.WAL(), nil)
	pts := httptest.NewServer(psrv)
	t.Cleanup(pts.Close)
	for i := 0; i < 10; i++ {
		if err := psm.Ingest(i%2, float64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Mirrored replica.
	rm, err := stardust.New(stardust.Config{Streams: 2, W: 8, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	rsm := stardust.WrapSafe(rm)
	rsrv := New(rsm)
	f, err := replication.NewFollower(replication.FollowerConfig{
		Primary:   pts.URL,
		Bootstrap: func(r io.Reader, _ uint64) error { return rsm.BootstrapReplica(r) },
		Apply:     rsm.ApplyWALRecord,
		MirrorDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rsrv.SetFollower(f, nil)
	rts := httptest.NewServer(rsrv)
	t.Cleanup(rts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go f.Run(ctx)
	deadline := time.Now().Add(10 * time.Second)
	for f.Status().AppliedLSN < pm.WAL().LastLSN() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at LSN %d", f.Status().AppliedLSN)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Replica refuses writes pre-promotion.
	resp, _ := postJSON(t, rts.URL+"/ingest", map[string]any{"stream": 0, "values": []float64{1}})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica ingest: got %d, want 403", resp.StatusCode)
	}

	// Promote over HTTP.
	resp, body := postJSON(t, rts.URL+"/repl/promote", nil)
	if resp.StatusCode != http.StatusOK || body["promoted"] != true {
		t.Fatalf("promote: got %d %v", resp.StatusCode, body)
	}
	sealed := uint64(body["sealed_lsn"].(float64))
	if sealed != pm.WAL().LastLSN() {
		t.Fatalf("sealed_lsn: got %d, want %d", sealed, pm.WAL().LastLSN())
	}
	resp, _ = postJSON(t, rts.URL+"/repl/promote", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second promote: got %d, want 409", resp.StatusCode)
	}

	// Promotion is observable and ingestion is open.
	_, ready := getJSON(t, rts.URL+"/readyz")
	repl, ok := ready["replication"].(map[string]any)
	if !ok || repl["role"] != "primary" || repl["promoted"] != true {
		t.Fatalf("post-promotion readyz replication: got %v", ready["replication"])
	}
	resp, body = postJSON(t, rts.URL+"/ingest", map[string]any{"stream": 0, "values": []float64{2}})
	if resp.StatusCode != http.StatusOK || body["values"].(float64) != 1 {
		t.Fatalf("post-promotion ingest: got %d %v", resp.StatusCode, body)
	}

	// The promoted server serves its mirror on /wal, starting where the
	// mirror starts — the bootstrap watermark + 1 (earlier LSNs live only
	// in the dead primary's log and correctly answer 410).
	wresp, err := http.Get(fmt.Sprintf("%s/wal?from=%d", rts.URL, sealed+1))
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("promoted /wal: got %d, want 200", wresp.StatusCode)
	}
}

// TestStatzFaultSection: an armed injector's counters surface on /statz.
func TestStatzFaultSection(t *testing.T) {
	ts, _ := newTestServer(t, "")
	_, statz := getJSON(t, ts.URL+"/statz")
	if _, ok := statz["fault"]; ok {
		t.Fatal("statz reports a fault section with no injector armed")
	}

	mon, err := stardust.NewSafe(stardust.Config{Streams: 2, W: 8, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(mon)
	inj := fault.New(1, fault.Rule{Point: "x.y", Err: fault.KindEIO})
	srv.SetFaultInjector(inj)
	inj.Eval("x.y")
	ts2 := httptest.NewServer(srv)
	t.Cleanup(ts2.Close)
	_, statz = getJSON(t, ts2.URL+"/statz")
	fsec, ok := statz["fault"].(map[string]any)
	if !ok {
		t.Fatalf("statz has no fault section: %v", statz)
	}
	if fsec["rules_armed"].(float64) != 1 || fsec["injected"].(float64) < 1 {
		t.Fatalf("statz fault counters: got %v", fsec)
	}
}
