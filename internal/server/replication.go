package server

import (
	"bytes"
	"time"

	"stardust/internal/obs"
	"stardust/internal/replication"
	"stardust/internal/wal"
)

// AttachPrimary mounts the WAL-shipping endpoints (GET /repl/status,
// /repl/snapshot and /wal) on the server, making it a replication
// primary. log is the backend monitor's write-ahead log; snapshots are
// produced from the backend with the watermark captured before
// serialization, exactly as Checkpoint does, so a follower that
// bootstraps from one and streams from watermark+1 converges to the
// primary's state. metrics (optional) receives the
// stardust_repl_primary_* instruments and is merged into /metricsz.
func (s *Server) AttachPrimary(log *wal.Log, metrics *obs.ReplMetrics) {
	snap := func() ([]byte, uint64, error) {
		lsn := log.LastLSN()
		var buf bytes.Buffer
		if err := s.mon.Snapshot(&buf); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), lsn, nil
	}
	p := replication.NewPrimary(log, snap, replication.PrimaryConfig{Metrics: metrics})
	p.Register(s.mux)
	s.replMetrics = metrics
}

// SetFollower marks the server a read-only replica fed by f: POST /ingest
// returns 403 (writes belong on the primary), query endpoints serve the
// replicated state normally, and /readyz and /statz report the replica's
// lag in records and seconds. metrics (optional) receives the
// stardust_repl_follower_* instruments and is merged into /metricsz. The
// caller runs f's Run loop; the server only reads its status.
func (s *Server) SetFollower(f *replication.Follower, metrics *obs.ReplMetrics) {
	s.follower = f
	s.replMetrics = metrics
}

// replicationInfo renders the follower's progress for the JSON status
// endpoints, or nil on non-followers. lag_seconds is 0 when the replica
// is caught up and -1 when it has never applied a record.
func (s *Server) replicationInfo() map[string]any {
	if s.follower == nil {
		return nil
	}
	st := s.follower.Status()
	return map[string]any{
		"role":         "follower",
		"connected":    st.Connected,
		"applied_lsn":  st.AppliedLSN,
		"primary_lsn":  st.PrimaryLSN,
		"lag_records":  st.LagRecords(),
		"lag_seconds":  st.LagSeconds(time.Now()),
		"reconnects":   st.Reconnects,
		"rebootstraps": st.Rebootstraps,
	}
}
