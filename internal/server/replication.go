package server

import (
	"bytes"
	"fmt"
	"net/http"
	"time"

	"stardust/internal/fault"
	"stardust/internal/obs"
	"stardust/internal/replication"
	"stardust/internal/wal"
)

// walPromoter is the backend surface promotion needs: SafeMonitor and
// SafeWatcher both attach a sealed mirror log in place.
type walPromoter interface {
	Promote(log *wal.Log) error
}

// SetWALRetainRecords sets the minimum number of trailing WAL records the
// replication primary keeps past checkpoints even with no follower
// connected — a grace window so a follower that reconnects after a brief
// absence streams from its position instead of re-bootstrapping through a
// 410 Gone. Call before AttachPrimary (or before a promotion installs the
// primary); 0 disables the window.
func (s *Server) SetWALRetainRecords(n uint64) { s.retain = n }

// SetFaultInjector exposes an armed fault injector's counters on /statz
// and /metricsz (stardust_fault_*), so a chaos drill can verify from the
// outside that its schedule actually fired. It does not arm anything by
// itself — the injector is wired into the WAL FS seam or HTTP transports
// by the caller.
func (s *Server) SetFaultInjector(inj *fault.Injector) { s.faultInj = inj }

// AttachPrimary makes the server a replication primary: the
// already-mounted GET /repl/status, /repl/snapshot and /wal endpoints
// begin serving from log. Snapshots are produced from the backend with
// the watermark captured before serialization, exactly as Checkpoint
// does, so a follower that bootstraps from one and streams from
// watermark+1 converges to the primary's state. The primary's retention
// floor is wired into the log: checkpoints do not trim records a
// connected follower still needs (nor the SetWALRetainRecords grace
// window). metrics (optional) receives the stardust_repl_primary_*
// instruments and is merged into /metricsz.
func (s *Server) AttachPrimary(log *wal.Log, metrics *obs.ReplMetrics) {
	s.replMetrics = metrics
	s.installPrimary(log, metrics)
}

// installPrimary builds the Primary over log and swaps it behind the
// replication routes. Shared by AttachPrimary and Promote.
func (s *Server) installPrimary(log *wal.Log, metrics *obs.ReplMetrics) {
	snap := func() ([]byte, uint64, error) {
		lsn := log.LastLSN()
		var buf bytes.Buffer
		if err := s.mon.Snapshot(&buf); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), lsn, nil
	}
	p := replication.NewPrimary(log, snap, replication.PrimaryConfig{
		Metrics:       metrics,
		RetainRecords: s.retain,
	})
	log.SetRetention(p.RetentionFloor)
	s.primary.Store(p)
}

// loadPrimary returns the installed primary, or nil with a 503 already
// written when this server is not (yet) a primary.
func (s *Server) loadPrimary(w http.ResponseWriter) *replication.Primary {
	p := s.primary.Load()
	if p == nil {
		writeErr(w, http.StatusServiceUnavailable, "not a replication primary")
	}
	return p
}

// handleReplStatus dispatches GET /repl/status to the installed primary.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if p := s.loadPrimary(w); p != nil {
		p.HandleStatus(w, r)
	}
}

// handleReplSnapshot dispatches GET /repl/snapshot to the installed
// primary.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if p := s.loadPrimary(w); p != nil {
		p.HandleSnapshot(w, r)
	}
}

// handleReplWAL dispatches GET /wal to the installed primary.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if p := s.loadPrimary(w); p != nil {
		p.HandleWAL(w, r)
	}
}

// SetFollower marks the server a read-only replica fed by f: POST /ingest
// returns 403 (writes belong on the primary), query endpoints serve the
// replicated state normally, and /readyz and /statz report the replica's
// lag in records and seconds. metrics (optional) receives the
// stardust_repl_follower_* instruments and is merged into /metricsz. The
// caller runs f's Run loop; the server only reads its status. A replica
// whose follower keeps a mirror log (FollowerConfig.MirrorDir) can later
// be promoted to primary via Promote or POST /repl/promote.
func (s *Server) SetFollower(f *replication.Follower, metrics *obs.ReplMetrics) {
	s.follower = f
	s.replMetrics = metrics
}

// Promote turns this read replica into the primary: the follower is
// sealed (replication stops, the mirror log is synced and handed over),
// the backend attaches the mirror as its write-ahead log, ingestion
// opens, and the replication endpoints begin serving the mirror to other
// followers — their streams continue at the LSNs where the old primary
// stopped. Returns the sealed log's last LSN. Promotion is once-only;
// concurrent and repeat calls fail. On failure after sealing, the
// replica is left sealed and must be rebuilt — promotion is attempted
// only when the primary is already presumed dead, so there is no safe
// way back to following.
func (s *Server) Promote() (uint64, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.promoted.Load() {
		return 0, fmt.Errorf("server: already promoted")
	}
	if s.follower == nil {
		return 0, fmt.Errorf("server: not a replica (no follower attached)")
	}
	promoter, ok := s.mon.(walPromoter)
	if !ok {
		return 0, fmt.Errorf("server: backend %T cannot attach a WAL", s.mon)
	}
	mirror, err := s.follower.Seal()
	if err != nil {
		return 0, fmt.Errorf("server: sealing follower: %w", err)
	}
	if err := promoter.Promote(mirror); err != nil {
		_ = mirror.Close()
		return 0, fmt.Errorf("server: attaching mirror log: %w", err)
	}
	s.installPrimary(mirror, s.replMetrics)
	s.promoted.Store(true)
	lsn := mirror.LastLSN()
	if m := s.replMetrics; m != nil {
		m.Promotions.Inc()
		m.PromoteSealedLSN.Set(int64(lsn))
		m.PromoteUnixNanos.Set(time.Now().UnixNano())
	}
	return lsn, nil
}

// handlePromote is POST /repl/promote: manual (or supervisor-driven)
// failover. 503 when this server is not a replica, 409 when already
// promoted.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.follower == nil {
		writeErr(w, http.StatusServiceUnavailable, "not a replica")
		return
	}
	if s.promoted.Load() {
		writeErr(w, http.StatusConflict, "already promoted")
		return
	}
	lsn, err := s.Promote()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "sealed_lsn": lsn})
}

// replicationInfo renders the replication role for the JSON status
// endpoints: follower progress on a replica, promotion provenance on a
// promoted primary, nil on servers with no replication role. lag_seconds
// is 0 when the replica is caught up and -1 when it has never applied a
// record.
func (s *Server) replicationInfo() map[string]any {
	if s.follower == nil {
		return nil
	}
	st := s.follower.Status()
	if s.promoted.Load() {
		return map[string]any{
			"role":        "primary",
			"promoted":    true,
			"applied_lsn": st.AppliedLSN,
		}
	}
	return map[string]any{
		"role":         "follower",
		"connected":    st.Connected,
		"applied_lsn":  st.AppliedLSN,
		"primary_lsn":  st.PrimaryLSN,
		"lag_records":  st.LagRecords(),
		"lag_seconds":  st.LagSeconds(time.Now()),
		"reconnects":   st.Reconnects,
		"rebootstraps": st.Rebootstraps,
	}
}
