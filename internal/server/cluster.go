package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"stardust"
	"stardust/internal/obs"
)

// SetClusterMetrics registers a router's coordinator instrument set so its
// stardust_cluster_* series are merged into GET /metricsz. Call before
// Serve.
func (s *Server) SetClusterMetrics(cm *obs.ClusterMetrics) {
	s.clusterMetrics = cm
}

// Handle registers an extra route on the server's mux before Serve. The
// router binary mounts its cluster admin surface (GET /clusterz,
// POST /cluster/shards) next to the standard endpoints with it.
func (s *Server) Handle(pattern string, handler http.HandlerFunc) {
	s.mux.HandleFunc(pattern, handler)
}

// WriteJSON exposes the server's JSON response convention to admin
// handlers registered via Handle.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, v)
}

// WriteError exposes the server's JSON error convention to admin handlers
// registered via Handle.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	writeErr(w, status, format, args...)
}

// nearestRequest is the body of POST /nearest.
type nearestRequest struct {
	Query []float64 `json:"query"`
	K     int       `json:"k"`
}

// handleNearest answers the k-nearest-neighbor pattern query — the fourth
// query class, exposed over HTTP so a router can serve it cluster-wide
// with the exact surface a single server has.
func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	var req nearestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Query) == 0 || req.K <= 0 {
		writeErr(w, http.StatusBadRequest, "query and positive k required")
		return
	}
	matches, err := s.mon.NearestPatterns(req.Query, req.K)
	partial := errors.Is(err, stardust.ErrPartialResult)
	if err != nil && !partial {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := map[string]any{"matches": matches}
	if partial {
		resp["partial"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterQueryRequest is the body of POST /cluster/q, the coordinator RPC
// endpoint: one kind-dispatched surface returning native result structs so
// a router's merge sees exactly the float64 values the backend computed
// (Go's JSON encoding round-trips float64 exactly).
type clusterQueryRequest struct {
	Kind      string                `json:"kind"`
	Query     []float64             `json:"query,omitempty"`
	Radius    float64               `json:"radius,omitempty"`
	K         int                   `json:"k,omitempty"`
	Level     int                   `json:"level,omitempty"`
	Lag       int                   `json:"lag,omitempty"`
	Stream    int                   `json:"stream,omitempty"`
	Window    int                   `json:"window,omitempty"`
	Threshold float64               `json:"threshold,omitempty"`
	Probes    []stardust.ZNormProbe `json:"probes,omitempty"`
}

// clusterResult wraps every /cluster/q answer.
func clusterResult(w http.ResponseWriter, v any) {
	writeJSON(w, http.StatusOK, map[string]any{"result": v})
}

// handleClusterQuery serves the coordinator RPC surface. Monitor
// rejections (bad level, negative lag, out-of-range stream) return 422 —
// the router propagates them to its caller instead of treating the shard
// as failed.
func (s *Server) handleClusterQuery(w http.ResponseWriter, r *http.Request) {
	var req clusterQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	features := func(level, lag int) ([]stardust.LevelFeature, bool) {
		fs, ok := s.mon.(stardust.FeatureSource)
		if !ok {
			return nil, false
		}
		return fs.RecentLevelFeatures(level, lag), true
	}
	switch req.Kind {
	case "pattern":
		res, err := s.mon.FindPattern(req.Query, req.Radius)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		clusterResult(w, res)
	case "nearest":
		matches, err := s.mon.NearestPatterns(req.Query, req.K)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		clusterResult(w, matches)
	case "correlations":
		res, err := s.mon.Correlations(req.Level, req.Radius)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		feats, ok := features(req.Level, 0)
		if !ok {
			writeErr(w, http.StatusNotImplemented, "backend does not export features")
			return
		}
		clusterResult(w, map[string]any{"intra": res, "features": feats})
	case "lagged":
		pairs, err := s.mon.LaggedCorrelations(req.Level, req.Radius, req.Lag)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		feats, ok := features(req.Level, req.Lag)
		if !ok {
			writeErr(w, http.StatusNotImplemented, "backend does not export features")
			return
		}
		clusterResult(w, map[string]any{"pairs": pairs, "features": feats})
	case "features":
		feats, ok := features(req.Level, req.Lag)
		if !ok {
			writeErr(w, http.StatusNotImplemented, "backend does not export features")
			return
		}
		clusterResult(w, feats)
	case "znorm":
		fs, ok := s.mon.(stardust.FeatureSource)
		if !ok {
			writeErr(w, http.StatusNotImplemented, "backend does not export features")
			return
		}
		out := make([]stardust.ZNormResult, len(req.Probes))
		for i, p := range req.Probes {
			values, ok := fs.ZNormWindow(p.Stream, p.Level, p.T)
			out[i] = stardust.ZNormResult{Values: values, OK: ok}
		}
		clusterResult(w, out)
	case "aggregate":
		res, err := s.mon.CheckAggregate(req.Stream, req.Window, req.Threshold)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		clusterResult(w, res)
	case "bound":
		res, err := s.mon.AggregateBound(req.Stream, req.Window)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		clusterResult(w, res)
	case "now":
		if req.Stream < 0 || req.Stream >= s.mon.NumStreams() {
			writeErr(w, http.StatusUnprocessableEntity, "stream %d out of range", req.Stream)
			return
		}
		clusterResult(w, s.mon.Now(req.Stream))
	case "stats":
		clusterResult(w, s.mon.Stats())
	case "metrics":
		clusterResult(w, s.mon.Metrics())
	default:
		writeErr(w, http.StatusBadRequest, "unknown kind %q", req.Kind)
	}
}
