package rstar

import (
	"math"
	"sort"

	"stardust/internal/mbr"
)

// Item is one box/payload pair for bulk loading.
type Item[T any] struct {
	Box   mbr.MBR
	Value T
}

// BulkLoad builds a tree from a static item set with the Sort-Tile-
// Recursive (STR) packing of Leutenegger et al.: items are recursively
// sorted by center coordinate one dimension at a time and tiled into
// vertical slabs so that every node is filled to capacity. Offline index
// construction (MR-Index, GeneralMatch) is an order of magnitude faster
// this way than by repeated insertion, and the packed tree has near-zero
// node overlap. The resulting tree supports the same queries, inserts and
// deletes as an incrementally built one.
func BulkLoad[T any](dim int, items []Item[T], opts ...Options) *Tree[T] {
	t := New[T](dim, opts...)
	if len(items) == 0 {
		return t
	}
	for i := range items {
		t.checkBox(items[i].Box)
	}
	entries := make([]entry[T], len(items))
	for i, it := range items {
		entries[i] = entry[T]{box: it.Box.Clone(), value: it.Value}
	}
	nodes := t.packLevel(entries, true)
	height := 1
	for len(nodes) > 1 {
		upper := make([]entry[T], len(nodes))
		for i, n := range nodes {
			upper[i] = entry[T]{box: n.boundingBox(dim), child: n}
		}
		nodes = t.packLevel(upper, false)
		height++
	}
	t.root = nodes[0]
	t.height = height
	t.size = len(items)
	return t
}

// packLevel tiles the entries into nodes of t.maxEntries each using the
// STR recursion over dimensions.
func (t *Tree[T]) packLevel(entries []entry[T], leaf bool) []*node[T] {
	nodeCount := (len(entries) + t.maxEntries - 1) / t.maxEntries
	if nodeCount == 1 {
		n := &node[T]{leaf: leaf, entries: entries}
		return []*node[T]{n}
	}
	t.strSort(entries, 0, nodeCount)
	nodes := make([]*node[T], 0, nodeCount)
	for start := 0; start < len(entries); start += t.maxEntries {
		end := start + t.maxEntries
		if end > len(entries) {
			end = len(entries)
		}
		n := &node[T]{leaf: leaf}
		n.entries = append(n.entries, entries[start:end]...)
		nodes = append(nodes, n)
	}
	// STR can leave a trailing underfull node; rebalance it from its
	// neighbour so every node respects the minimum fill.
	last := nodes[len(nodes)-1]
	if len(nodes) > 1 && len(last.entries) < t.minEntries {
		prev := nodes[len(nodes)-2]
		need := t.minEntries - len(last.entries)
		moved := prev.entries[len(prev.entries)-need:]
		last.entries = append(append([]entry[T]{}, moved...), last.entries...)
		prev.entries = prev.entries[:len(prev.entries)-need]
	}
	return nodes
}

// strSort recursively sorts entries by center coordinate along dim and
// partitions them into slabs sized for the remaining dimensions.
func (t *Tree[T]) strSort(entries []entry[T], dim, nodeCount int) {
	if dim >= t.dim-1 || nodeCount <= 1 || len(entries) <= t.maxEntries {
		sortByCenter(entries, dim)
		return
	}
	sortByCenter(entries, dim)
	// Number of slabs along this dimension: ceil(nodeCount^(1/remaining)).
	remaining := t.dim - dim
	slabs := int(math.Ceil(math.Pow(float64(nodeCount), 1/float64(remaining))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(entries) + slabs - 1) / slabs
	// Round the slab size to a multiple of node capacity so downstream
	// tiles stay full.
	if rem := slabSize % t.maxEntries; rem != 0 {
		slabSize += t.maxEntries - rem
	}
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		sub := entries[start:end]
		t.strSort(sub, dim+1, (len(sub)+t.maxEntries-1)/t.maxEntries)
	}
}

func sortByCenter[T any](entries []entry[T], dim int) {
	sort.SliceStable(entries, func(i, j int) bool {
		ci := entries[i].box.Min[dim] + entries[i].box.Max[dim]
		cj := entries[j].box.Min[dim] + entries[j].box.Max[dim]
		return ci < cj
	})
}
