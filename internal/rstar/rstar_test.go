package rstar

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stardust/internal/mbr"
)

func pointBox(xs ...float64) mbr.MBR { return mbr.FromPoint(xs) }

func randBox(rng *rand.Rand, dim int, span float64) mbr.MBR {
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for i := 0; i < dim; i++ {
		c := rng.Float64() * span
		w := rng.Float64() * span / 20
		lo[i], hi[i] = c, c+w
	}
	return mbr.FromBounds(lo, hi)
}

func TestEmptyTree(t *testing.T) {
	tr := New[int](2)
	if tr.Len() != 0 || tr.Height() != 1 || tr.Dim() != 2 {
		t.Fatalf("fresh tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !tr.Bounds().IsEmpty() {
		t.Fatal("empty tree bounds should be empty")
	}
}

func TestNewBadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New[int](0)
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New[int](2)
	tr.Insert(pointBox(1, 1), 10)
	tr.Insert(pointBox(2, 2), 20)
	tr.Insert(pointBox(10, 10), 30)
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	got := tr.SearchAll(mbr.FromBounds([]float64{0, 0}, []float64{5, 5}))
	sort.Ints(got)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("search = %v", got)
	}
}

func TestInsertEmptyBoxPanics(t *testing.T) {
	tr := New[int](2)
	defer func() {
		if recover() == nil {
			t.Fatal("inserting empty box should panic")
		}
	}()
	tr.Insert(mbr.New(2), 1)
}

func TestInsertWrongDimPanics(t *testing.T) {
	tr := New[int](2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dim insert should panic")
		}
	}()
	tr.Insert(pointBox(1, 2, 3), 1)
}

// TestManyInsertsInvariants drives the tree through thousands of inserts,
// checking structural invariants throughout and exact query answers against
// a linear scan.
func TestManyInsertsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr := New[int](3, Options{MaxEntries: 8})
	type rec struct {
		box mbr.MBR
		id  int
	}
	var recs []rec
	for i := 0; i < 3000; i++ {
		b := randBox(rng, 3, 100)
		tr.Insert(b, i)
		recs = append(recs, rec{box: b, id: i})
		if i%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, expected a real tree", tr.Height())
	}

	for q := 0; q < 50; q++ {
		query := randBox(rng, 3, 100).Enlarge(5)
		got := tr.SearchAll(query)
		sort.Ints(got)
		var want []int
		for _, r := range recs {
			if r.box.Intersects(query) {
				want = append(want, r.id)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: results differ at %d", q, i)
			}
		}
	}
}

func TestSearchSphereMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New[int](2, Options{MaxEntries: 6})
	var boxes []mbr.MBR
	for i := 0; i < 1000; i++ {
		b := randBox(rng, 2, 50)
		tr.Insert(b, i)
		boxes = append(boxes, b)
	}
	for q := 0; q < 30; q++ {
		center := []float64{rng.Float64() * 50, rng.Float64() * 50}
		r := rng.Float64() * 10
		var got []int
		tr.SearchSphere(center, r, func(_ mbr.MBR, v int) bool {
			got = append(got, v)
			return true
		})
		sort.Ints(got)
		var want []int
		for i, b := range boxes {
			if b.MinDist(center) <= r {
				want = append(want, i)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("sphere query %d: got %d want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sphere query %d mismatch", q)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New[int](1)
	for i := 0; i < 100; i++ {
		tr.Insert(pointBox(float64(i)), i)
	}
	count := 0
	tr.Search(mbr.FromBounds([]float64{0}, []float64{99}), func(_ mbr.MBR, _ int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestAllVisitsEverything(t *testing.T) {
	tr := New[int](2, Options{MaxEntries: 4})
	for i := 0; i < 200; i++ {
		tr.Insert(pointBox(float64(i%17), float64(i%13)), i)
	}
	seen := make(map[int]bool)
	tr.All(func(_ mbr.MBR, v int) bool {
		seen[v] = true
		return true
	})
	if len(seen) != 200 {
		t.Fatalf("All visited %d, want 200", len(seen))
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New[int](2)
	tr.Insert(pointBox(1, 1), 1)
	tr.Insert(pointBox(2, 2), 2)
	if !tr.Delete(pointBox(1, 1), func(v int) bool { return v == 1 }) {
		t.Fatal("delete failed")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Delete(pointBox(1, 1), func(v int) bool { return v == 1 }) {
		t.Fatal("double delete should fail")
	}
	got := tr.SearchAll(mbr.FromBounds([]float64{0, 0}, []float64{3, 3}))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("post-delete search = %v", got)
	}
}

// TestInsertDeleteChurn mixes inserts and deletes, verifying invariants and
// exact membership against a reference map.
func TestInsertDeleteChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr := New[int](2, Options{MaxEntries: 8})
	live := make(map[int]mbr.MBR)
	next := 0
	for step := 0; step < 4000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			b := randBox(rng, 2, 100)
			tr.Insert(b, next)
			live[next] = b
			next++
		} else {
			// Delete a random live id.
			var id int
			for k := range live {
				id = k
				break
			}
			b := live[id]
			if !tr.Delete(b, func(v int) bool { return v == id }) {
				t.Fatalf("step %d: delete of %d failed", step, id)
			}
			delete(live, id)
		}
		if step%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: len %d vs %d live", step, tr.Len(), len(live))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Final exhaustive check.
	seen := make(map[int]bool)
	tr.All(func(_ mbr.MBR, v int) bool {
		seen[v] = true
		return true
	})
	if len(seen) != len(live) {
		t.Fatalf("tree has %d entries, want %d", len(seen), len(live))
	}
	for id := range live {
		if !seen[id] {
			t.Fatalf("live id %d missing from tree", id)
		}
	}
}

func TestDeleteToEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tr := New[int](2, Options{MaxEntries: 4})
	var boxes []mbr.MBR
	for i := 0; i < 300; i++ {
		b := randBox(rng, 2, 10)
		boxes = append(boxes, b)
		tr.Insert(b, i)
	}
	for i, b := range boxes {
		id := i
		if !tr.Delete(b, func(v int) bool { return v == id }) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting everything", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d, want 1", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Tree must remain usable.
	tr.Insert(pointBox(1, 1), 999)
	if got := tr.SearchAll(pointBox(1, 1)); len(got) != 1 || got[0] != 999 {
		t.Fatalf("post-rebuild search = %v", got)
	}
}

func TestNearestNeighbors(t *testing.T) {
	tr := New[int](2, Options{MaxEntries: 4})
	for i := 0; i < 100; i++ {
		tr.Insert(pointBox(float64(i), 0), i)
	}
	nn := tr.NearestNeighbors([]float64{42.2, 0}, 3)
	if len(nn) != 3 {
		t.Fatalf("got %d neighbors", len(nn))
	}
	if nn[0].Value != 42 || nn[1].Value != 43 || nn[2].Value != 41 {
		t.Fatalf("neighbors = %v, %v, %v", nn[0].Value, nn[1].Value, nn[2].Value)
	}
	if nn[0].Dist2 > nn[1].Dist2 || nn[1].Dist2 > nn[2].Dist2 {
		t.Fatal("neighbors not sorted by distance")
	}
	if got := tr.NearestNeighbors([]float64{0, 0}, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestNearestNeighborsMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	tr := New[int](3, Options{MaxEntries: 8})
	var boxes []mbr.MBR
	for i := 0; i < 500; i++ {
		b := randBox(rng, 3, 100)
		boxes = append(boxes, b)
		tr.Insert(b, i)
	}
	for q := 0; q < 20; q++ {
		p := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		nn := tr.NearestNeighbors(p, 5)
		dists := make([]float64, len(boxes))
		for i, b := range boxes {
			dists[i] = b.MinDist2(p)
		}
		sort.Float64s(dists)
		for i, neigh := range nn {
			if d := neigh.Dist2 - dists[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("query %d: neighbor %d dist %g, want %g", q, i, neigh.Dist2, dists[i])
			}
		}
	}
}

func TestDuplicateBoxes(t *testing.T) {
	tr := New[int](2, Options{MaxEntries: 4})
	for i := 0; i < 100; i++ {
		tr.Insert(pointBox(1, 1), i) // all identical
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.SearchAll(pointBox(1, 1))
	if len(got) != 100 {
		t.Fatalf("found %d duplicates, want 100", len(got))
	}
}

func TestOptionsDefaults(t *testing.T) {
	tr := New[int](2, Options{MaxEntries: 3}) // below minimum, clamped to 4
	for i := 0; i < 50; i++ {
		tr.Insert(pointBox(float64(i), float64(i)), i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInsertedAlwaysFindable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int](2, Options{MaxEntries: 4 + rng.Intn(12)})
		n := 50 + rng.Intn(200)
		boxes := make([]mbr.MBR, n)
		for i := 0; i < n; i++ {
			boxes[i] = randBox(rng, 2, 40)
			tr.Insert(boxes[i], i)
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		// Every inserted box must be found by a query of itself.
		for i, b := range boxes {
			found := false
			tr.Search(b, func(_ mbr.MBR, v int) bool {
				if v == i {
					found = true
					return false
				}
				return true
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int](4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(randBox(rng, 4, 1000), i)
	}
}

func BenchmarkSearchSphere(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := New[int](4)
	for i := 0; i < 20000; i++ {
		tr.Insert(randBox(rng, 4, 1000), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		center := []float64{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		tr.SearchSphere(center, 50, func(_ mbr.MBR, _ int) bool { return true })
	}
}
