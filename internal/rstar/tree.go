// Package rstar implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990): ChooseSubtree with minimum overlap enlargement at
// the leaf level, forced reinsertion on first overflow per level, and the
// margin/overlap/area topological split. Stardust maintains one tree per
// resolution level; each tree indexes the feature MBRs of all streams.
//
// The tree is generic over the leaf payload type T so the same structure
// serves aggregate features (stream + time interval payloads) and DWT
// features.
//
// # Concurrency
//
// The tree is single-writer, multi-reader: Insert and Delete mutate node
// structure and require exclusive access, while the read-side surface —
// Search, SearchAll, SearchSphere, NearestNeighbors, All, Size, Height —
// touches nodes read-only and records instrumentation exclusively through
// the atomic counters and histograms of obs.TreeMetrics. Any number of
// goroutines may therefore search one tree concurrently as long as no
// writer runs at the same time; interleaving a writer requires external
// locking. Stardust's parallel query stages rely on this contract: the
// summary's worker pool issues concurrent searches against trees that are
// mutated only between queries, on the (serial) ingestion path.
package rstar

import (
	"fmt"

	"stardust/internal/mbr"
	"stardust/internal/obs"
)

// Default fan-out parameters. Beckmann et al. recommend m ≈ 40% of M and
// reinsertion of p = 30% of M entries.
const (
	DefaultMaxEntries = 32
	DefaultMinEntries = 13 // ~40% of max
)

// Tree is an R*-tree over axis-aligned boxes with payloads of type T. The
// zero value is not usable; construct with New.
type Tree[T any] struct {
	dim        int
	minEntries int
	maxEntries int
	reinsertP  int
	root       *node[T]
	height     int // levels, leaf = 1
	size       int
	mets       *obs.TreeMetrics // nil = uninstrumented
}

type entry[T any] struct {
	box   mbr.MBR
	child *node[T] // non-nil for internal entries
	value T        // payload for leaf entries
}

type node[T any] struct {
	leaf    bool
	entries []entry[T]
}

func (n *node[T]) boundingBox(dim int) mbr.MBR {
	b := mbr.New(dim)
	for i := range n.entries {
		b.Extend(n.entries[i].box)
	}
	return b
}

// Options configures tree construction.
type Options struct {
	// MaxEntries is the node fan-out M (default DefaultMaxEntries).
	MaxEntries int
	// MinEntries is the minimum fill m (default 40% of MaxEntries).
	MinEntries int
}

// New returns an empty R*-tree over boxes of the given dimensionality.
func New[T any](dim int, opts ...Options) *Tree[T] {
	if dim <= 0 {
		panic(fmt.Sprintf("rstar: non-positive dimension %d", dim))
	}
	maxE, minE := DefaultMaxEntries, 0
	if len(opts) > 0 {
		if opts[0].MaxEntries > 0 {
			maxE = opts[0].MaxEntries
		}
		minE = opts[0].MinEntries
	}
	if maxE < 4 {
		maxE = 4
	}
	if minE <= 0 {
		minE = (maxE * 2) / 5
	}
	if minE < 2 {
		minE = 2
	}
	if minE > maxE/2 {
		minE = maxE / 2
	}
	p := (maxE * 3) / 10
	if p < 1 {
		p = 1
	}
	return &Tree[T]{
		dim:        dim,
		minEntries: minE,
		maxEntries: maxE,
		reinsertP:  p,
		root:       &node[T]{leaf: true},
		height:     1,
	}
}

// SetMetrics attaches an observability sink counting node accesses,
// splits and reinsertions. Several trees may share one sink (Stardust's
// per-level trees report into a single summary-wide TreeMetrics). A nil
// sink (the default) disables instrumentation.
func (t *Tree[T]) SetMetrics(m *obs.TreeMetrics) { t.mets = m }

// noteReads adds n node visits to the sink.
func (t *Tree[T]) noteReads(n int64) {
	if t.mets != nil {
		t.mets.NodeReads.Add(n)
	}
}

// noteWrites adds n node modifications to the sink.
func (t *Tree[T]) noteWrites(n int64) {
	if t.mets != nil {
		t.mets.NodeWrites.Add(n)
	}
}

// noteSearch records one completed search traversal that visited reads
// nodes.
func (t *Tree[T]) noteSearch(reads int64) {
	if t.mets == nil {
		return
	}
	t.mets.Searches.Inc()
	t.mets.NodeReads.Add(reads)
	t.mets.SearchNodes.Observe(float64(reads))
}

// Len returns the number of stored entries.
func (t *Tree[T]) Len() int { return t.size }

// Dim returns the box dimensionality.
func (t *Tree[T]) Dim() int { return t.dim }

// Height returns the tree height in levels (an empty tree has height 1).
func (t *Tree[T]) Height() int { return t.height }

// Bounds returns the bounding box of all entries (empty MBR when empty).
func (t *Tree[T]) Bounds() mbr.MBR { return t.root.boundingBox(t.dim) }

// checkBox validates an input box against the tree dimensionality.
func (t *Tree[T]) checkBox(b mbr.MBR) {
	if b.Dim() != t.dim {
		panic(fmt.Sprintf("rstar: box dimension %d does not match tree dimension %d", b.Dim(), t.dim))
	}
	if b.IsEmpty() {
		panic("rstar: empty box")
	}
}

// CheckInvariants walks the tree verifying structural invariants: child
// boxes are contained in parent entry boxes, node fills respect [m, M]
// (except the root), all leaves share the recorded height, and the entry
// count matches Len. Intended for tests; returns a descriptive error on the
// first violation.
func (t *Tree[T]) CheckInvariants() error {
	count := 0
	var walk func(n *node[T], level int, isRoot bool) error
	walk = func(n *node[T], level int, isRoot bool) error {
		if !isRoot {
			if len(n.entries) < t.minEntries || len(n.entries) > t.maxEntries {
				return fmt.Errorf("rstar: node at level %d has %d entries outside [%d, %d]",
					level, len(n.entries), t.minEntries, t.maxEntries)
			}
		} else if len(n.entries) > t.maxEntries {
			return fmt.Errorf("rstar: root has %d entries above max %d", len(n.entries), t.maxEntries)
		}
		if n.leaf {
			if level != 1 {
				return fmt.Errorf("rstar: leaf at level %d, expected 1", level)
			}
			count += len(n.entries)
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child == nil {
				return fmt.Errorf("rstar: internal entry without child at level %d", level)
			}
			cb := e.child.boundingBox(t.dim)
			if !e.box.Equal(cb) {
				return fmt.Errorf("rstar: stale parent box at level %d: have %v want %v", level, e.box, cb)
			}
			if err := walk(e.child, level-1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rstar: counted %d entries, Len reports %d", count, t.size)
	}
	return nil
}
