package rstar

import (
	"math/rand"
	"sort"
	"testing"
)

func bulkItems(rng *rand.Rand, n, dim int) []Item[int] {
	items := make([]Item[int], n)
	for i := range items {
		items[i] = Item[int]{Box: randBox(rng, dim, 100), Value: i}
	}
	return items
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad[int](2, nil)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty bulk load: len=%d height=%d", tr.Len(), tr.Height())
	}
	tr.Insert(pointBox(1, 1), 1)
	if tr.Len() != 1 {
		t.Fatal("empty bulk-loaded tree should accept inserts")
	}
}

func TestBulkLoadInvariantsAndQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for _, n := range []int{1, 5, 33, 100, 1000, 5000} {
		items := bulkItems(rng, n, 3)
		tr := BulkLoad(3, items, Options{MaxEntries: 16})
		if tr.Len() != n {
			t.Fatalf("n=%d: len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Queries must match linear scan.
		for q := 0; q < 10; q++ {
			query := randBox(rng, 3, 100).Enlarge(5)
			got := tr.SearchAll(query)
			sort.Ints(got)
			var want []int
			for _, it := range items {
				if it.Box.Intersects(query) {
					want = append(want, it.Value)
				}
			}
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("n=%d query %d: %d vs %d results", n, q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d query %d: result mismatch", n, q)
				}
			}
		}
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	items := bulkItems(rng, 2000, 2)
	tr := BulkLoad(2, items, Options{MaxEntries: 8})
	// Delete half, insert new ones, re-check.
	for i := 0; i < 1000; i++ {
		if !tr.Delete(items[i].Box, func(v int) bool { return v == items[i].Value }) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 0; i < 500; i++ {
		tr.Insert(randBox(rng, 2, 100), 10000+i)
	}
	if tr.Len() != 1500 {
		t.Fatalf("len = %d, want 1500", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadHeightCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	items := bulkItems(rng, 4096, 2)
	packed := BulkLoad(2, items, Options{MaxEntries: 16})
	incremental := New[int](2, Options{MaxEntries: 16})
	for _, it := range items {
		incremental.Insert(it.Box, it.Value)
	}
	if packed.Height() > incremental.Height() {
		t.Fatalf("packed height %d exceeds incremental %d", packed.Height(), incremental.Height())
	}
	// The packed tree should be essentially full: height near the
	// information-theoretic minimum log_16(4096) = 3.
	if packed.Height() > 4 {
		t.Fatalf("packed height %d too tall", packed.Height())
	}
}

func TestBulkLoadDoesNotAliasInput(t *testing.T) {
	items := []Item[int]{{Box: pointBox(1, 2), Value: 7}}
	tr := BulkLoad(2, items)
	items[0].Box.Min[0] = 99
	got := tr.SearchAll(pointBox(1, 2))
	if len(got) != 1 || got[0] != 7 {
		t.Fatal("bulk load aliased caller's boxes")
	}
}

func BenchmarkBulkLoadVsInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(174))
	items := bulkItems(rng, 20000, 4)
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BulkLoad(4, items)
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := New[int](4)
			for _, it := range items {
				tr.Insert(it.Box, it.Value)
			}
		}
	})
}
