package rstar

import (
	"math/rand"
	"sync"
	"testing"

	"stardust/internal/mbr"
	"stardust/internal/obs"
)

// TestConcurrentSearches exercises the package's documented read-side
// concurrency contract: with no writer running, any number of goroutines
// may search one (instrumented) tree at once. Run under -race this is the
// contract's regression test — a data race in the traversal or the metrics
// path fails the build.
func TestConcurrentSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New[int](3)
	mets := obs.NewMetrics()
	tr.SetMetrics(&mets.Tree)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(randBox(rng, 3, 100), i)
	}

	// Serial reference answers for the queries each goroutine will run.
	centers := make([][]float64, 8)
	wantRange := make([]int, len(centers))
	wantNN := make([]int, len(centers))
	for i := range centers {
		centers[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		tr.SearchSphere(centers[i], 25, func(_ mbr.MBR, _ int) bool { return true })
	}
	for i, c := range centers {
		tr.SearchSphere(c, 25, func(_ mbr.MBR, _ int) bool { wantRange[i]++; return true })
		wantNN[i] = len(tr.NearestNeighbors(c, 10))
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, c := range centers {
					got := 0
					tr.SearchSphere(c, 25, func(_ mbr.MBR, _ int) bool { got++; return true })
					if got != wantRange[i] {
						t.Errorf("concurrent SearchSphere: got %d results, want %d", got, wantRange[i])
						return
					}
					if nn := len(tr.NearestNeighbors(c, 10)); nn != wantNN[i] {
						t.Errorf("concurrent NearestNeighbors: got %d, want %d", nn, wantNN[i])
						return
					}
				}
				tr.All(func(_ mbr.MBR, _ int) bool { return true })
			}
		}()
	}
	wg.Wait()

	if mets.Tree.Searches.Load() == 0 {
		t.Fatal("instrumented tree recorded no searches")
	}
}
