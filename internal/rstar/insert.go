package rstar

import (
	"math"
	"sort"

	"stardust/internal/mbr"
)

// Insert adds a box/payload pair to the tree.
func (t *Tree[T]) Insert(box mbr.MBR, value T) {
	t.checkBox(box)
	if t.mets != nil {
		t.mets.Inserts.Inc()
	}
	// The reinserted map tracks which levels already performed forced
	// reinsertion during this insertion (R* performs it at most once per
	// level per insertion; see OverflowTreatment in the paper). It is
	// allocated lazily on first overflow — most inserts never need it.
	t.insertAtLevel(entry[T]{box: box.Clone(), value: value}, 1, nil)
	t.size++
}

// insertAtLevel places e into a node at the target level (leaf = 1),
// handling overflow by forced reinsert or split.
func (t *Tree[T]) insertAtLevel(e entry[T], level int, reinserted map[int]bool) {
	path := t.choosePath(e.box, level)
	n := path[len(path)-1]
	n.entries = append(n.entries, e)
	t.adjustPath(path, e.box)
	// Every node on the path was read to choose the subtree and written to
	// extend its entry box (the leaf to hold the new entry).
	t.noteReads(int64(len(path)))
	t.noteWrites(int64(len(path)))

	// Resolve overflows bottom-up along the path.
	for i := len(path) - 1; i >= 0; i-- {
		nd := path[i]
		if len(nd.entries) <= t.maxEntries {
			break
		}
		lvl := t.height - i // node level: root is t.height, leaf is 1
		if lvl < t.height && !reinserted[lvl] {
			if reinserted == nil {
				reinserted = make(map[int]bool)
			}
			reinserted[lvl] = true
			t.forcedReinsert(path, i, lvl, reinserted)
			// forcedReinsert re-enters insertAtLevel; tree may have been
			// restructured, so stop processing this stale path.
			return
		}
		t.splitAt(path, i)
		if i == 0 {
			break // splitAt grew the root; nothing above to overflow
		}
	}
}

// choosePath descends from the root to the node at targetLevel (leaf = 1)
// using the R* ChooseSubtree criterion, returning the path of nodes visited
// (root first).
func (t *Tree[T]) choosePath(box mbr.MBR, targetLevel int) []*node[T] {
	path := make([]*node[T], 0, t.height)
	n := t.root
	level := t.height
	path = append(path, n)
	for level > targetLevel {
		idx := t.chooseSubtree(n, box, level-1 == 1)
		n = n.entries[idx].child
		level--
		path = append(path, n)
	}
	return path
}

// overlapCandidates caps how many entries the leaf-level overlap criterion
// evaluates: Beckmann et al.'s CS2 optimization restricts the quadratic
// overlap computation to the entries whose area enlargement is smallest.
const overlapCandidates = 8

// chooseSubtree picks the child entry of n to descend into. When the
// children are leaves, R* minimizes overlap enlargement (ties: area
// enlargement, then area), evaluated for the overlapCandidates entries of
// least area enlargement; otherwise it minimizes area enlargement (ties:
// area).
func (t *Tree[T]) chooseSubtree(n *node[T], box mbr.MBR, childrenAreLeaves bool) int {
	if !childrenAreLeaves {
		best := 0
		bestEnl, bestArea := math.Inf(1), math.Inf(1)
		for i := range n.entries {
			e := &n.entries[i]
			area := e.box.Volume()
			enl := unionVolume(e.box, box) - area
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		return best
	}

	// Select the overlapCandidates entries of least area enlargement
	// (ties: least area) with a bounded insertion pass.
	type cand struct {
		idx  int
		enl  float64
		area float64
	}
	var candBuf [overlapCandidates]cand
	limit := 0
	for i := range n.entries {
		e := &n.entries[i]
		area := e.box.Volume()
		c := cand{idx: i, enl: unionVolume(e.box, box) - area, area: area}
		pos := limit
		for pos > 0 {
			p := candBuf[pos-1]
			if p.enl < c.enl || (p.enl == c.enl && p.area <= c.area) {
				break
			}
			pos--
		}
		if pos >= overlapCandidates {
			continue
		}
		end := limit
		if end >= overlapCandidates {
			end = overlapCandidates - 1
		}
		copy(candBuf[pos+1:end+1], candBuf[pos:end])
		candBuf[pos] = c
		if limit < overlapCandidates {
			limit++
		}
	}

	dim := t.dim
	uLo := make([]float64, dim)
	uHi := make([]float64, dim)
	best := candBuf[0].idx
	bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
	for ci := 0; ci < limit; ci++ {
		c := candBuf[ci]
		e := &n.entries[c.idx]
		for d := 0; d < dim; d++ {
			uLo[d] = math.Min(e.box.Min[d], box.Min[d])
			uHi[d] = math.Max(e.box.Max[d], box.Max[d])
		}
		var overlapDelta float64
		for j := range n.entries {
			if j == c.idx {
				continue
			}
			sib := &n.entries[j]
			// Overlap of the union with the sibling minus the current
			// overlap, computed without allocation.
			uo, eo := 1.0, 1.0
			for d := 0; d < dim; d++ {
				lo := math.Max(uLo[d], sib.box.Min[d])
				hi := math.Min(uHi[d], sib.box.Max[d])
				if hi <= lo {
					uo = 0
					break
				}
				uo *= hi - lo
			}
			if eo != 0 {
				for d := 0; d < dim; d++ {
					lo := math.Max(e.box.Min[d], sib.box.Min[d])
					hi := math.Min(e.box.Max[d], sib.box.Max[d])
					if hi <= lo {
						eo = 0
						break
					}
					eo *= hi - lo
				}
			}
			overlapDelta += uo - eo
		}
		if overlapDelta < bestOverlap ||
			(overlapDelta == bestOverlap && (c.enl < bestEnl ||
				(c.enl == bestEnl && c.area < bestArea))) {
			best, bestOverlap, bestEnl, bestArea = c.idx, overlapDelta, c.enl, c.area
		}
	}
	return best
}

// adjustPath extends the parent entry boxes along path to cover box.
func (t *Tree[T]) adjustPath(path []*node[T], box mbr.MBR) {
	for i := 0; i < len(path)-1; i++ {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].box.Extend(box)
				break
			}
		}
	}
}

// refreshParentBox recomputes the parent entry box of child exactly.
func (t *Tree[T]) refreshParentBox(parent, child *node[T]) {
	for j := range parent.entries {
		if parent.entries[j].child == child {
			parent.entries[j].box = child.boundingBox(t.dim)
			return
		}
	}
}

// forcedReinsert removes the reinsertP entries of path[idx] whose centers
// are farthest from the node's center and reinserts them at nodeLevel
// (close reinsert: farthest first per Beckmann et al.'s experiments the
// paper reinserts in "close" order — we sort descending and reinsert the
// closest of the removed set first).
func (t *Tree[T]) forcedReinsert(path []*node[T], idx, nodeLevel int, reinserted map[int]bool) {
	if t.mets != nil {
		t.mets.Reinserts.Inc()
	}
	t.noteWrites(1) // the shrunk node; re-entered inserts count themselves
	n := path[idx]
	center := n.boundingBox(t.dim).Center()
	type distEntry struct {
		d float64
		e entry[T]
	}
	des := make([]distEntry, len(n.entries))
	for i := range n.entries {
		c := n.entries[i].box.Center()
		d := 0.0
		for k := range c {
			dd := c[k] - center[k]
			d += dd * dd
		}
		des[i] = distEntry{d: d, e: n.entries[i]}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d < des[j].d })

	keep := len(des) - t.reinsertP
	n.entries = n.entries[:0]
	for i := 0; i < keep; i++ {
		n.entries = append(n.entries, des[i].e)
	}
	// Tighten ancestors now that the node shrank.
	for i := idx; i >= 1; i-- {
		t.refreshParentBox(path[i-1], path[i])
	}
	// Close reinsert: nearest of the removed entries first.
	for i := keep; i < len(des); i++ {
		t.insertAtLevel(des[i].e, nodeLevel, reinserted)
	}
}

// splitAt splits path[idx], installing the new sibling in the parent (or
// growing a new root when idx == 0).
func (t *Tree[T]) splitAt(path []*node[T], idx int) {
	if t.mets != nil {
		t.mets.Splits.Inc()
	}
	t.noteWrites(2) // the split node and its new sibling (plus root/parent below)
	n := path[idx]
	sibling := t.split(n)
	if idx == 0 {
		newRoot := &node[T]{leaf: false}
		newRoot.entries = append(newRoot.entries,
			entry[T]{box: n.boundingBox(t.dim), child: n},
			entry[T]{box: sibling.boundingBox(t.dim), child: sibling},
		)
		t.root = newRoot
		t.height++
		return
	}
	parent := path[idx-1]
	t.refreshParentBox(parent, n)
	parent.entries = append(parent.entries, entry[T]{box: sibling.boundingBox(t.dim), child: sibling})
}

// unionVolume returns the volume of the bounding box of a and b without
// allocating.
func unionVolume(a, b mbr.MBR) float64 {
	v := 1.0
	for d := range a.Min {
		lo := a.Min[d]
		if b.Min[d] < lo {
			lo = b.Min[d]
		}
		hi := a.Max[d]
		if b.Max[d] > hi {
			hi = b.Max[d]
		}
		v *= hi - lo
	}
	return v
}
