package rstar

import (
	"math"
	"sort"

	"stardust/internal/mbr"
)

// split performs the R* topological split of an overflowing node n,
// returning the new sibling. Axis choice minimizes the sum of margins over
// all candidate distributions; the distribution along the chosen axis
// minimizes overlap (ties: combined area).
func (t *Tree[T]) split(n *node[T]) *node[T] {
	axis := t.chooseSplitAxis(n)
	splitIdx, byUpper := t.chooseSplitIndex(n, axis)

	sortEntriesByAxis(n.entries, axis, byUpper)
	right := &node[T]{leaf: n.leaf}
	right.entries = append(right.entries, n.entries[splitIdx:]...)
	n.entries = n.entries[:splitIdx]
	return right
}

// sortEntriesByAxis sorts entries by their lower (or upper) coordinate on
// the axis, tie-broken by the other coordinate for determinism.
func sortEntriesByAxis[T any](entries []entry[T], axis int, byUpper bool) {
	sort.SliceStable(entries, func(i, j int) bool {
		var a1, a2, b1, b2 float64
		if byUpper {
			a1, b1 = entries[i].box.Max[axis], entries[j].box.Max[axis]
			a2, b2 = entries[i].box.Min[axis], entries[j].box.Min[axis]
		} else {
			a1, b1 = entries[i].box.Min[axis], entries[j].box.Min[axis]
			a2, b2 = entries[i].box.Max[axis], entries[j].box.Max[axis]
		}
		if a1 != b1 {
			return a1 < b1
		}
		return a2 < b2
	})
}

// distributions enumerates the M − 2m + 2 candidate split points: the first
// group takes the m + k − 1 leading entries for k = 1..M−2m+2.
func (t *Tree[T]) distributions(total int) (first, last int) {
	return t.minEntries, total - t.minEntries
}

// chooseSplitAxis returns the axis whose candidate distributions have the
// smallest total margin (S in the R* paper), considering both lower- and
// upper-coordinate sortings.
func (t *Tree[T]) chooseSplitAxis(n *node[T]) int {
	bestAxis, bestS := 0, math.Inf(1)
	scratch := make([]entry[T], len(n.entries))
	for axis := 0; axis < t.dim; axis++ {
		s := 0.0
		for _, byUpper := range []bool{false, true} {
			copy(scratch, n.entries)
			sortEntriesByAxis(scratch, axis, byUpper)
			lo, hi := t.distributions(len(scratch))
			for k := lo; k <= hi; k++ {
				left, right := groupBoxes(scratch, k, t.dim)
				s += left.Margin() + right.Margin()
			}
		}
		if s < bestS {
			bestAxis, bestS = axis, s
		}
	}
	return bestAxis
}

// chooseSplitIndex returns the split position and sort direction along the
// chosen axis minimizing overlap volume between the two groups (ties:
// minimal combined area).
func (t *Tree[T]) chooseSplitIndex(n *node[T], axis int) (idx int, byUpper bool) {
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	scratch := make([]entry[T], len(n.entries))
	idx = t.minEntries
	for _, upper := range []bool{false, true} {
		copy(scratch, n.entries)
		sortEntriesByAxis(scratch, axis, upper)
		lo, hi := t.distributions(len(scratch))
		for k := lo; k <= hi; k++ {
			left, right := groupBoxes(scratch, k, t.dim)
			overlap := left.OverlapVolume(right)
			area := left.Volume() + right.Volume()
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = overlap, area
				idx, byUpper = k, upper
			}
		}
	}
	return idx, byUpper
}

// groupBoxes returns the bounding boxes of entries[:k] and entries[k:].
func groupBoxes[T any](entries []entry[T], k, dim int) (left, right mbr.MBR) {
	left, right = mbr.New(dim), mbr.New(dim)
	for i := 0; i < k; i++ {
		left.Extend(entries[i].box)
	}
	for i := k; i < len(entries); i++ {
		right.Extend(entries[i].box)
	}
	return left, right
}
