package rstar

import (
	"container/heap"

	"stardust/internal/mbr"
)

// Visitor receives leaf entries during a search. Returning false stops the
// search early.
type Visitor[T any] func(box mbr.MBR, value T) bool

// Search visits every leaf entry whose box intersects query.
func (t *Tree[T]) Search(query mbr.MBR, visit Visitor[T]) {
	t.checkBox(query)
	var reads int64
	t.searchNode(t.root, query, visit, &reads)
	t.noteSearch(reads)
}

func (t *Tree[T]) searchNode(n *node[T], query mbr.MBR, visit Visitor[T], reads *int64) bool {
	*reads++
	for i := range n.entries {
		e := &n.entries[i]
		if !e.box.Intersects(query) {
			continue
		}
		if n.leaf {
			if !visit(e.box, e.value) {
				return false
			}
		} else if !t.searchNode(e.child, query, visit, reads) {
			return false
		}
	}
	return true
}

// SearchAll returns the payloads of every leaf entry intersecting query.
func (t *Tree[T]) SearchAll(query mbr.MBR) []T {
	var out []T
	t.Search(query, func(_ mbr.MBR, v T) bool {
		out = append(out, v)
		return true
	})
	return out
}

// SearchSphere visits every leaf entry whose box lies within Euclidean
// distance r of the point center (MinDist(center, box) ≤ r) — the range
// query used by pattern and correlation monitoring.
func (t *Tree[T]) SearchSphere(center []float64, r float64, visit Visitor[T]) {
	if len(center) != t.dim {
		panic("rstar: query point dimensionality mismatch")
	}
	r2 := r * r
	var reads int64
	t.searchSphereNode(t.root, center, r2, visit, &reads)
	t.noteSearch(reads)
}

func (t *Tree[T]) searchSphereNode(n *node[T], center []float64, r2 float64, visit Visitor[T], reads *int64) bool {
	*reads++
	for i := range n.entries {
		e := &n.entries[i]
		if e.box.MinDist2(center) > r2 {
			continue
		}
		if n.leaf {
			if !visit(e.box, e.value) {
				return false
			}
		} else if !t.searchSphereNode(e.child, center, r2, visit, reads) {
			return false
		}
	}
	return true
}

// All visits every leaf entry in the tree.
func (t *Tree[T]) All(visit Visitor[T]) {
	t.allNode(t.root, visit)
}

func (t *Tree[T]) allNode(n *node[T], visit Visitor[T]) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if n.leaf {
			if !visit(e.box, e.value) {
				return false
			}
		} else if !t.allNode(e.child, visit) {
			return false
		}
	}
	return true
}

// Neighbor is one result of a nearest-neighbor query.
type Neighbor[T any] struct {
	Box   mbr.MBR
	Value T
	Dist2 float64
}

// nnItem is one best-first queue element: either a subtree or a leaf
// entry, keyed by its MinDist² to the query point.
type nnItem[T any] struct {
	d2   float64
	node *node[T]
	leaf *entry[T]
}

// nnQueue is a min-heap over nnItems.
type nnQueue[T any] []nnItem[T]

func (q nnQueue[T]) Len() int           { return len(q) }
func (q nnQueue[T]) Less(i, j int) bool { return q[i].d2 < q[j].d2 }
func (q nnQueue[T]) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue[T]) Push(x any)        { *q = append(*q, x.(nnItem[T])) }
func (q *nnQueue[T]) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// NearestNeighbors returns the k leaf entries with the smallest MinDist to
// the query point, ordered by increasing distance. It implements the
// best-first branch-and-bound traversal of Roussopoulos et al. over a
// min-heap: a leaf entry popped from the heap is guaranteed closer than
// everything unexplored, so the first k pops are exactly the answer.
func (t *Tree[T]) NearestNeighbors(center []float64, k int) []Neighbor[T] {
	if len(center) != t.dim {
		panic("rstar: query point dimensionality mismatch")
	}
	if k <= 0 || t.size == 0 {
		return nil
	}
	queue := nnQueue[T]{{d2: 0, node: t.root}}
	var out []Neighbor[T]
	var reads int64
	defer func() { t.noteSearch(reads) }()
	for queue.Len() > 0 && len(out) < k {
		item := heap.Pop(&queue).(nnItem[T])
		if item.leaf != nil {
			out = append(out, Neighbor[T]{Box: item.leaf.box, Value: item.leaf.value, Dist2: item.d2})
			continue
		}
		n := item.node
		reads++
		for i := range n.entries {
			e := &n.entries[i]
			it := nnItem[T]{d2: e.box.MinDist2(center)}
			if n.leaf {
				it.leaf = e
			} else {
				it.node = e.child
			}
			heap.Push(&queue, it)
		}
	}
	return out
}
