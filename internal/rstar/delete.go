package rstar

import "stardust/internal/mbr"

// Delete removes the first leaf entry whose box intersects hint and whose
// payload satisfies match. It returns whether an entry was removed.
// Underfull nodes along the deletion path are dissolved and their entries
// reinserted at their original level (the CondenseTree step of the R-tree
// family); a root with a single child is collapsed.
func (t *Tree[T]) Delete(hint mbr.MBR, match func(T) bool) bool {
	t.checkBox(hint)
	path, leafIdx := t.findLeafEntry(t.root, hint, match, t.height)
	if path == nil {
		return false
	}
	if t.mets != nil {
		t.mets.Deletes.Inc()
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:leafIdx], leaf.entries[leafIdx+1:]...)
	t.size--
	t.noteWrites(int64(len(path))) // the leaf plus every ancestor condense touches
	t.condense(path)
	return true
}

// findLeafEntry locates the leaf holding a matching entry, returning the
// root-to-leaf path and the entry index, or nil if absent.
func (t *Tree[T]) findLeafEntry(n *node[T], hint mbr.MBR, match func(T) bool, level int) ([]*node[T], int) {
	t.noteReads(1)
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].box.Intersects(hint) && match(n.entries[i].value) {
				return []*node[T]{n}, i
			}
		}
		return nil, 0
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.box.Intersects(hint) {
			continue
		}
		if path, idx := t.findLeafEntry(e.child, hint, match, level-1); path != nil {
			return append([]*node[T]{n}, path...), idx
		}
	}
	return nil, 0
}

// condense walks the deletion path bottom-up, removing underfull nodes and
// queueing their entries for reinsertion at the correct level, then
// collapses a single-child root.
func (t *Tree[T]) condense(path []*node[T]) {
	type orphan struct {
		e     entry[T]
		level int
	}
	var orphans []orphan

	for i := len(path) - 1; i >= 1; i-- {
		n, parent := path[i], path[i-1]
		level := t.height - i
		if len(n.entries) < t.minEntries {
			// Dissolve n: detach from parent and queue its entries.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: level})
			}
		} else {
			t.refreshParentBox(parent, n)
		}
	}

	// Collapse the root while it is an internal node with one child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		// All children dissolved; restart from an empty leaf.
		t.root = &node[T]{leaf: true}
		t.height = 1
	}

	// Reinsert orphans at their original level. Leaf-level orphans (level
	// 1) are plain entries; higher-level orphans carry whole subtrees. If
	// the tree shrank below an orphan's level, its subtree is unpacked one
	// level at a time.
	for _, o := range orphans {
		t.reinsertOrphan(o.e, o.level)
	}
}

// reinsertOrphan inserts e at the given level, unpacking the subtree when
// the tree is no longer tall enough to host it directly.
func (t *Tree[T]) reinsertOrphan(e entry[T], level int) {
	for level > t.height && e.child != nil {
		// Cannot attach a subtree at or above the root; unpack one level.
		children := e.child.entries
		for _, c := range children[1:] {
			t.reinsertOrphan(c, level-1)
		}
		e = children[0]
		level--
	}
	if e.child == nil {
		level = 1
	}
	reinserted := make(map[int]bool)
	t.insertAtLevel(e, level, reinserted)
}
