package obs

import (
	"sort"
	"sync"
)

// WatchMetrics instruments the standing-query engine (the Watcher): how
// many watches of each kind are active, how many events they fired and
// cleared, and how long one evaluation pass takes. The evaluation pass
// runs on every push, so its latency is sampled like per-append latency
// (one pass in SampleEvery is timed) to keep the ingest hot path cheap.
type WatchMetrics struct {
	// ActiveAggregate, ActivePattern and ActiveCorrelation are the
	// standing watches currently registered, by kind.
	ActiveAggregate, ActivePattern, ActiveCorrelation Gauge
	// Installs and Uninstalls count watch registrations and removals
	// (spec reloads show up as paired bursts).
	Installs, Uninstalls Counter
	// Fired counts events delivered (aggregate alarms, pattern matches,
	// correlation pairs); Cleared counts aggregate-cleared events.
	Fired, Cleared Counter
	// Evaluations counts evaluation passes (one per admitted push);
	// EvaluateNanos is the sampled wall time of one pass.
	Evaluations   Counter
	EvaluateNanos *Histogram
}

// WatchSnapshot is the standing-query section of a Snapshot: all-zero when
// no watcher is attached.
type WatchSnapshot struct {
	// ActiveAggregate, ActivePattern and ActiveCorrelation count the
	// registered watches by kind.
	ActiveAggregate, ActivePattern, ActiveCorrelation int64
	// Installs and Uninstalls count registrations and removals.
	Installs, Uninstalls int64
	// Fired and Cleared count delivered and cleared events.
	Fired, Cleared int64
	// Evaluations counts evaluation passes; EvaluateNanos is the sampled
	// per-pass latency distribution.
	Evaluations   int64
	EvaluateNanos HistogramSnapshot
}

// merge sums the two sides (sharded monitors present one surface).
func (w WatchSnapshot) merge(o WatchSnapshot) WatchSnapshot {
	return WatchSnapshot{
		ActiveAggregate:   w.ActiveAggregate + o.ActiveAggregate,
		ActivePattern:     w.ActivePattern + o.ActivePattern,
		ActiveCorrelation: w.ActiveCorrelation + o.ActiveCorrelation,
		Installs:          w.Installs + o.Installs,
		Uninstalls:        w.Uninstalls + o.Uninstalls,
		Fired:             w.Fired + o.Fired,
		Cleared:           w.Cleared + o.Cleared,
		Evaluations:       w.Evaluations + o.Evaluations,
		EvaluateNanos:     w.EvaluateNanos.merge(o.EvaluateNanos),
	}
}

// TenantMetrics instruments the multi-tenant serving tier
// (internal/tenant): one labeled instrument row per tenant, surfaced as
// the stardust_tenant_* series on /metricsz. Like the cluster and
// replication instrument sets it is a process-level concern — the server
// merges its snapshot into the backend-aggregated one.
type TenantMetrics struct {
	mu       sync.Mutex
	byName   map[string]*TenantInstruments
	ordering []string
}

// TenantInstruments is one tenant's instrument row.
type TenantInstruments struct {
	// Streams is the tenant's allocated stream-space width.
	Streams Gauge
	// Samples counts ingestion attempts admitted into the quota/rate
	// checks; Rejected counts samples refused by the backend guard or the
	// stream quota; RateLimited counts samples refused by the ingest rate
	// quota.
	Samples, Rejected, RateLimited Counter
	// WatchesActive is the tenant's currently installed standing watches.
	WatchesActive Gauge
	// Events counts standing-query events attributed to the tenant.
	Events Counter
}

// NewTenantMetrics builds an empty per-tenant instrument set.
func NewTenantMetrics() *TenantMetrics {
	return &TenantMetrics{byName: make(map[string]*TenantInstruments)}
}

// Tenant returns the named tenant's instruments, creating them on first
// use. Safe for concurrent use.
func (t *TenantMetrics) Tenant(name string) *TenantInstruments {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.byName[name]
	if !ok {
		row = &TenantInstruments{}
		t.byName[name] = row
		t.ordering = append(t.ordering, name)
	}
	return row
}

// Snapshot captures every tenant row at one point in time, sorted by
// tenant name for stable exposition output.
func (t *TenantMetrics) Snapshot() TenantsSnapshot {
	t.mu.Lock()
	rows := make([]TenantSnapshot, 0, len(t.ordering))
	for _, name := range t.ordering {
		r := t.byName[name]
		rows = append(rows, TenantSnapshot{
			Name:          name,
			Streams:       r.Streams.Load(),
			Samples:       r.Samples.Load(),
			Rejected:      r.Rejected.Load(),
			RateLimited:   r.RateLimited.Load(),
			WatchesActive: r.WatchesActive.Load(),
			Events:        r.Events.Load(),
		})
	}
	t.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return TenantsSnapshot{PerTenant: rows}
}

// TenantSnapshot is one tenant's row in a TenantsSnapshot.
type TenantSnapshot struct {
	// Name is the tenant's configured name (its metric label).
	Name string
	// Streams through Events mirror TenantInstruments.
	Streams                        int64
	Samples, Rejected, RateLimited int64
	WatchesActive                  int64
	Events                         int64
}

// TenantsSnapshot is the multi-tenant section of a Snapshot: empty when
// the process serves no tenants.
type TenantsSnapshot struct {
	// PerTenant lists each tenant's quota usage and traffic, sorted by
	// name.
	PerTenant []TenantSnapshot
}

// merge combines the per-tenant rows by name: counters sum, the width
// gauge keeps the maximum (every process of a fleet sees the same quota).
func (t TenantsSnapshot) merge(o TenantsSnapshot) TenantsSnapshot {
	if len(o.PerTenant) == 0 {
		return t
	}
	if len(t.PerTenant) == 0 {
		return o
	}
	byName := make(map[string]TenantSnapshot, len(t.PerTenant)+len(o.PerTenant))
	for _, r := range t.PerTenant {
		byName[r.Name] = r
	}
	for _, r := range o.PerTenant {
		if prev, ok := byName[r.Name]; ok {
			if prev.Streams > r.Streams {
				r.Streams = prev.Streams
			}
			r.Samples += prev.Samples
			r.Rejected += prev.Rejected
			r.RateLimited += prev.RateLimited
			r.WatchesActive += prev.WatchesActive
			r.Events += prev.Events
		}
		byName[r.Name] = r
	}
	rows := make([]TenantSnapshot, 0, len(byName))
	for _, r := range byName {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return TenantsSnapshot{PerTenant: rows}
}
