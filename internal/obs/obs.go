// Package obs is Stardust's zero-dependency observability substrate: atomic
// counters, gauges and bounded histograms that instrument the summary's hot
// paths — ingestion, R*-tree node accesses and the three query classes —
// without changing their behavior. The paper states its cost model in index
// node accesses, per-item update time and candidate-vs-verified alarm
// counts (Section 6); these are exactly the quantities the substrate
// captures, so every future optimisation can be measured against the
// paper's own axes.
//
// All primitives are safe for concurrent use. A nil metrics sink disables
// instrumentation at the call site (hot paths check once per operation, not
// per sample), and per-append latency is sampled rather than timed on every
// arrival so the instrumented ingest path stays within a few percent of the
// uninstrumented one.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one and returns the new value.
func (c *Counter) Inc() int64 { return c.v.Add(1) }

// Add adds n and returns the new value (n must be non-negative to preserve
// monotonicity).
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (which may be negative) atomically —
// the increment/decrement form used by in-flight style gauges.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a bounded histogram over float64 observations: fixed bucket
// upper bounds chosen at construction, one atomic count per bucket plus an
// overflow bucket, and an atomically accumulated sum. Memory is O(buckets)
// regardless of observation count.
type Histogram struct {
	bounds []float64 // ascending upper bounds; observations > last go to overflow
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. An implicit +Inf overflow bucket is appended.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// LatencyBuckets returns exponential nanosecond bounds from 250ns to ~1s,
// suitable for both per-append and per-query latencies.
func LatencyBuckets() []float64 {
	bounds := make([]float64, 0, 23)
	for v := 250.0; v <= 1e9; v *= 2 {
		bounds = append(bounds, v)
	}
	return bounds
}

// CountBuckets returns exponential bounds 1, 2, 4, ... 4096 for small-count
// distributions such as index node accesses per query.
func CountBuckets() []float64 {
	bounds := make([]float64, 13)
	for i := range bounds {
		bounds[i] = float64(int64(1) << uint(i))
	}
	return bounds
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Bounds are few (≤ ~24); a linear scan beats binary search's branch
	// misses at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// HistogramSnapshot is a plain-data copy of a Histogram. Counts has one
// entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (ascending). Counts[i] holds
	// observations ≤ Bounds[i] (and > Bounds[i-1]); Counts[len(Bounds)] is
	// the overflow bucket.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket. Observations in the overflow bucket are
// attributed to the last finite bound. Returns 0 when empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: no finite upper bound, report the last one.
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// P50 is the estimated median.
func (h HistogramSnapshot) P50() float64 { return h.Quantile(0.50) }

// P95 is the estimated 95th percentile.
func (h HistogramSnapshot) P95() float64 { return h.Quantile(0.95) }

// P99 is the estimated 99th percentile.
func (h HistogramSnapshot) P99() float64 { return h.Quantile(0.99) }

// merge adds o's buckets into h (a fresh copy is returned; inputs are not
// mutated). Histograms from differently-configured monitors (mismatched
// bounds) fall back to keeping the larger side's buckets and folding the
// other side into count/sum only.
func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	if len(h.Bounds) == 0 {
		return o
	}
	out := HistogramSnapshot{
		Bounds: h.Bounds,
		Counts: append([]int64(nil), h.Counts...),
		Count:  h.Count + o.Count,
		Sum:    h.Sum + o.Sum,
	}
	if len(o.Counts) == len(h.Counts) {
		for i, c := range o.Counts {
			out.Counts[i] += c
		}
	}
	return out
}

// TreeMetrics instruments one or more R*-trees: structural writes (inserts,
// deletes, splits, forced reinsertions) and node accesses, the unit the
// paper's index cost model counts. All per-level trees of a summary share
// one TreeMetrics, so the totals are summary-wide.
type TreeMetrics struct {
	// Inserts and Deletes count leaf entries added/removed.
	Inserts, Deletes Counter
	// Searches counts range/sphere/nearest-neighbor traversals.
	Searches Counter
	// NodeReads counts nodes visited by any operation; NodeWrites counts
	// nodes structurally modified (entry added/removed/box adjusted).
	NodeReads, NodeWrites Counter
	// Splits counts node splits; Reinserts counts forced-reinsertion
	// rounds (R* OverflowTreatment).
	Splits, Reinserts Counter
	// SearchNodes is the distribution of nodes read per search traversal —
	// the per-operation index cost the paper reports.
	SearchNodes *Histogram
}

// QueryMetrics instruments one query class.
type QueryMetrics struct {
	// Queries counts invocations (including erroneous ones).
	Queries Counter
	// Candidates counts records retrieved by the index screen; Verified
	// counts those confirmed on raw history. Verified/Candidates is the
	// paper's precision (pruning power).
	Candidates, Verified Counter
	// Latency is the per-invocation wall time in nanoseconds.
	Latency *Histogram
}

// observe records one completed query.
func (q *QueryMetrics) observe(candidates, verified int, nanos int64) {
	q.Queries.Inc()
	q.Candidates.Add(int64(candidates))
	q.Verified.Add(int64(verified))
	q.Latency.Observe(float64(nanos))
}

// IngestMetrics instruments the ingestion path. Accept/repair/reject
// counters live in the resilience guard; here we track the sample cadence
// and the per-append latency distribution.
type IngestMetrics struct {
	// Samples counts ingestion attempts (admitted or not); it also drives
	// latency sampling.
	Samples Counter
	// Batches counts IngestBatch invocations; BatchSize is the distribution
	// of their sizes, so batch amortization is visible next to the
	// per-sample counters.
	Batches   Counter
	BatchSize *Histogram
	// AppendNanos is the sampled per-append latency (one in SampleEvery
	// appends is timed; batched appends observe their amortized per-sample
	// cost when the batch crosses a sampling point).
	AppendNanos *Histogram
}

// SampleEvery is the per-append latency sampling period: one append in
// SampleEvery is timed. It is a power of two so the hot path can mask
// instead of divide.
const SampleEvery = 64

// Sampled reports whether the n-th sample should be timed.
func Sampled(n int64) bool { return n&(SampleEvery-1) == 0 }

// SampledBatch reports whether a batch of n samples ending at cumulative
// count end crossed a sampling point, i.e. whether some k ≡ 0 (mod
// SampleEvery) lies in (end−n, end].
func SampledBatch(end, n int64) bool {
	if n <= 0 {
		return false
	}
	return end/SampleEvery != (end-n)/SampleEvery || Sampled(end)
}

// ParallelMetrics instruments the query-stage worker pool that fans
// candidate screening and verification across cores. A round is one
// fan-out (one screening or verification stage of one query); tasks are
// the independent work items sharded across the workers.
type ParallelMetrics struct {
	// Workers is the configured pool width (1 = serial execution).
	Workers Gauge
	// Rounds counts stages that fanned out across workers; SerialRounds
	// counts stages that ran inline (Workers == 1 or too few items to be
	// worth the fan-out).
	Rounds, SerialRounds Counter
	// Tasks counts work items processed by either path.
	Tasks Counter
	// QueueDepth is the distribution of items enqueued per parallel round;
	// divide by Workers for the average per-worker share.
	QueueDepth *Histogram
	// StageNanos is the wall time per parallel round — screening-stage
	// latency, the quantity to compare across Workers settings for
	// parallel efficiency.
	StageNanos *Histogram
}

// ObserveSerial records one stage that ran inline with n items.
func (p *ParallelMetrics) ObserveSerial(n int) {
	p.SerialRounds.Inc()
	p.Tasks.Add(int64(n))
}

// ObserveRound records one completed parallel fan-out of n items that took
// nanos wall time.
func (p *ParallelMetrics) ObserveRound(n int, nanos int64) {
	p.Rounds.Inc()
	p.Tasks.Add(int64(n))
	p.QueueDepth.Observe(float64(n))
	p.StageNanos.Observe(float64(nanos))
}

// WALMetrics instruments the write-ahead log on the ingest hot path:
// append volume, fsync cadence and latency (the durability cost), group
// commit amortization, and the segment lifecycle driven by rotation and
// snapshot-watermark trimming.
type WALMetrics struct {
	// Appends counts records appended; AppendedBytes their framed sizes.
	Appends, AppendedBytes Counter
	// Fsyncs counts fsync calls; FsyncNanos is their latency distribution.
	Fsyncs     Counter
	FsyncNanos *Histogram
	// GroupCommit is the distribution of records made durable per fsync —
	// the group-commit batch size. Values above 1 mean concurrent callers
	// shared one fsync.
	GroupCommit *Histogram
	// Rotations counts segment rollovers; SegmentsLive is the current
	// on-disk segment count; SegmentsTrimmed counts segments removed by
	// snapshot-watermark GC.
	Rotations       Counter
	SegmentsLive    Gauge
	SegmentsTrimmed Counter
	// ReplayedRecords and ReplayedSamples count what crash recovery read
	// back; ReplayNanos is the wall time of the last replay.
	ReplayedRecords, ReplayedSamples Counter
	// ReplayNanos is the duration of the most recent replay (0 = none ran).
	ReplayNanos Gauge
	// Degraded is 1 while the log is detached from a failing disk
	// (FailDegrade policy) and ingest is in-memory only.
	Degraded Gauge
	// DroppedAppends counts records dropped while degraded (ingested in
	// memory, never logged); WriteRetries counts segment-write retry
	// attempts after transient errors; Reattaches counts recoveries from
	// degraded mode back to a fresh on-disk segment.
	DroppedAppends, WriteRetries, Reattaches Counter
}

// Metrics is the live instrument set of one monitor. Construct with
// NewMetrics; all fields are safe for concurrent use.
type Metrics struct {
	Ingest      IngestMetrics
	Tree        TreeMetrics
	Parallel    ParallelMetrics
	WAL         WALMetrics
	Watch       WatchMetrics
	Aggregate   QueryMetrics
	Pattern     QueryMetrics
	Correlation QueryMetrics
}

// NewMetrics builds a metrics set with default histogram bounds.
func NewMetrics() *Metrics {
	m := &Metrics{}
	m.Ingest.AppendNanos = NewHistogram(LatencyBuckets())
	m.Ingest.BatchSize = NewHistogram(CountBuckets())
	m.Tree.SearchNodes = NewHistogram(CountBuckets())
	m.Parallel.QueueDepth = NewHistogram(CountBuckets())
	m.Parallel.StageNanos = NewHistogram(LatencyBuckets())
	m.WAL.FsyncNanos = NewHistogram(LatencyBuckets())
	m.WAL.GroupCommit = NewHistogram(CountBuckets())
	m.Watch.EvaluateNanos = NewHistogram(LatencyBuckets())
	m.Aggregate.Latency = NewHistogram(LatencyBuckets())
	m.Pattern.Latency = NewHistogram(LatencyBuckets())
	m.Correlation.Latency = NewHistogram(LatencyBuckets())
	return m
}

// ObserveQuery records one completed query of the given class.
func (q *QueryMetrics) ObserveQuery(candidates, verified int, nanos int64) {
	q.observe(candidates, verified, nanos)
}

// Snapshot captures every instrument at one point in time. Counters are
// read individually (not under one lock), so a snapshot taken during
// concurrent ingestion is per-counter consistent, not globally atomic —
// fine for monitoring, where each series is monotone on its own.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Ingest: IngestSnapshot{
			Samples:     m.Ingest.Samples.Load(),
			Batches:     m.Ingest.Batches.Load(),
			BatchSize:   m.Ingest.BatchSize.Snapshot(),
			AppendNanos: m.Ingest.AppendNanos.Snapshot(),
		},
		Tree: TreeSnapshot{
			Inserts:     m.Tree.Inserts.Load(),
			Deletes:     m.Tree.Deletes.Load(),
			Searches:    m.Tree.Searches.Load(),
			NodeReads:   m.Tree.NodeReads.Load(),
			NodeWrites:  m.Tree.NodeWrites.Load(),
			Splits:      m.Tree.Splits.Load(),
			Reinserts:   m.Tree.Reinserts.Load(),
			SearchNodes: m.Tree.SearchNodes.Snapshot(),
		},
		Parallel: ParallelSnapshot{
			Workers:      m.Parallel.Workers.Load(),
			Rounds:       m.Parallel.Rounds.Load(),
			SerialRounds: m.Parallel.SerialRounds.Load(),
			Tasks:        m.Parallel.Tasks.Load(),
			QueueDepth:   m.Parallel.QueueDepth.Snapshot(),
			StageNanos:   m.Parallel.StageNanos.Snapshot(),
		},
		WAL: WALSnapshot{
			Appends:         m.WAL.Appends.Load(),
			AppendedBytes:   m.WAL.AppendedBytes.Load(),
			Fsyncs:          m.WAL.Fsyncs.Load(),
			FsyncNanos:      m.WAL.FsyncNanos.Snapshot(),
			GroupCommit:     m.WAL.GroupCommit.Snapshot(),
			Rotations:       m.WAL.Rotations.Load(),
			SegmentsLive:    m.WAL.SegmentsLive.Load(),
			SegmentsTrimmed: m.WAL.SegmentsTrimmed.Load(),
			ReplayedRecords: m.WAL.ReplayedRecords.Load(),
			ReplayedSamples: m.WAL.ReplayedSamples.Load(),
			ReplayNanos:     m.WAL.ReplayNanos.Load(),
			Degraded:        m.WAL.Degraded.Load(),
			DroppedAppends:  m.WAL.DroppedAppends.Load(),
			WriteRetries:    m.WAL.WriteRetries.Load(),
			Reattaches:      m.WAL.Reattaches.Load(),
		},
		Watch: WatchSnapshot{
			ActiveAggregate:   m.Watch.ActiveAggregate.Load(),
			ActivePattern:     m.Watch.ActivePattern.Load(),
			ActiveCorrelation: m.Watch.ActiveCorrelation.Load(),
			Installs:          m.Watch.Installs.Load(),
			Uninstalls:        m.Watch.Uninstalls.Load(),
			Fired:             m.Watch.Fired.Load(),
			Cleared:           m.Watch.Cleared.Load(),
			Evaluations:       m.Watch.Evaluations.Load(),
			EvaluateNanos:     m.Watch.EvaluateNanos.Snapshot(),
		},
		Aggregate:   snapshotQuery(&m.Aggregate),
		Pattern:     snapshotQuery(&m.Pattern),
		Correlation: snapshotQuery(&m.Correlation),
	}
}

func snapshotQuery(q *QueryMetrics) QuerySnapshot {
	return QuerySnapshot{
		Queries:    q.Queries.Load(),
		Candidates: q.Candidates.Load(),
		Verified:   q.Verified.Load(),
		Latency:    q.Latency.Snapshot(),
	}
}

// IngestSnapshot is the ingestion section of a Snapshot. The guard's
// accept/repair/reject counters are filled in by the monitor wrapper that
// owns the guard.
type IngestSnapshot struct {
	// Samples counts ingestion attempts seen by the instrumented path.
	Samples int64
	// Batches counts IngestBatch invocations; BatchSize is the size
	// distribution of those batches.
	Batches   int64
	BatchSize HistogramSnapshot
	// Accepted/Repaired/Rejected mirror the resilience guard's counters.
	Accepted, Repaired, Rejected int64
	// QuarantinedStreams and QuarantineTrips mirror the guard's quarantine
	// state.
	QuarantinedStreams, QuarantineTrips int64
	// AppendNanos is the sampled per-append latency distribution.
	AppendNanos HistogramSnapshot
}

// ParallelSnapshot is the worker-pool section of a Snapshot.
type ParallelSnapshot struct {
	// Workers is the configured pool width (1 = serial).
	Workers int64
	// Rounds/SerialRounds split query stages by execution path; Tasks
	// counts work items across both.
	Rounds, SerialRounds, Tasks int64
	// QueueDepth is the items-per-round distribution; StageNanos the
	// per-round wall time.
	QueueDepth, StageNanos HistogramSnapshot
}

// WALSnapshot is the write-ahead-log section of a Snapshot. All fields are
// zero when durability is disabled.
type WALSnapshot struct {
	// Appends counts records written; AppendedBytes their framed sizes.
	Appends, AppendedBytes int64
	// Fsyncs counts fsync calls; FsyncNanos their latency distribution;
	// GroupCommit the records-per-fsync distribution.
	Fsyncs                  int64
	FsyncNanos, GroupCommit HistogramSnapshot
	// Rotations/SegmentsLive/SegmentsTrimmed describe the segment
	// lifecycle.
	Rotations, SegmentsLive, SegmentsTrimmed int64
	// ReplayedRecords/ReplayedSamples/ReplayNanos describe the last crash
	// recovery replay.
	ReplayedRecords, ReplayedSamples, ReplayNanos int64
	// Degraded is 1 while the log is detached from a failing disk;
	// DroppedAppends counts records dropped while degraded, WriteRetries
	// the segment-write retries, Reattaches the recoveries back to disk.
	Degraded, DroppedAppends, WriteRetries, Reattaches int64
}

// merge sums two WAL snapshots (sharded monitors present one surface).
func (w WALSnapshot) merge(o WALSnapshot) WALSnapshot {
	replay := w.ReplayNanos
	if o.ReplayNanos > replay {
		replay = o.ReplayNanos
	}
	degraded := w.Degraded
	if o.Degraded > degraded {
		degraded = o.Degraded
	}
	return WALSnapshot{
		Appends:         w.Appends + o.Appends,
		AppendedBytes:   w.AppendedBytes + o.AppendedBytes,
		Fsyncs:          w.Fsyncs + o.Fsyncs,
		FsyncNanos:      w.FsyncNanos.merge(o.FsyncNanos),
		GroupCommit:     w.GroupCommit.merge(o.GroupCommit),
		Rotations:       w.Rotations + o.Rotations,
		SegmentsLive:    w.SegmentsLive + o.SegmentsLive,
		SegmentsTrimmed: w.SegmentsTrimmed + o.SegmentsTrimmed,
		ReplayedRecords: w.ReplayedRecords + o.ReplayedRecords,
		ReplayedSamples: w.ReplayedSamples + o.ReplayedSamples,
		ReplayNanos:     replay,
		Degraded:        degraded,
		DroppedAppends:  w.DroppedAppends + o.DroppedAppends,
		WriteRetries:    w.WriteRetries + o.WriteRetries,
		Reattaches:      w.Reattaches + o.Reattaches,
	}
}

// TreeSnapshot is the R*-tree section of a Snapshot (summed over all
// resolution levels).
type TreeSnapshot struct {
	Inserts, Deletes, Searches int64
	NodeReads, NodeWrites      int64
	Splits, Reinserts          int64
	SearchNodes                HistogramSnapshot
}

// QuerySnapshot is one query class's section of a Snapshot.
type QuerySnapshot struct {
	Queries, Candidates, Verified int64
	Latency                       HistogramSnapshot
}

// PruningPower is the paper's precision metric for the index screen:
// verified results over retrieved candidates (1 when nothing was
// retrieved). Low pruning power means the index admits many candidates
// that verification then discards.
func (q QuerySnapshot) PruningPower() float64 {
	if q.Candidates == 0 {
		return 1
	}
	return float64(q.Verified) / float64(q.Candidates)
}

// FaultSnapshot is the fault-injection section of a Snapshot: all-zero in
// production (no injector armed). The server fills it from the injector's
// counters so chaos experiments can watch their own blast radius on
// /metricsz.
type FaultSnapshot struct {
	// RulesArmed is the number of fault rules currently loaded.
	RulesArmed int64
	// Evals counts injection-point evaluations; Injected counts the
	// subset that fired a fault.
	Evals, Injected int64
}

// merge sums counters and takes the maximum of the armed-rules gauge.
func (f FaultSnapshot) merge(o FaultSnapshot) FaultSnapshot {
	armed := f.RulesArmed
	if o.RulesArmed > armed {
		armed = o.RulesArmed
	}
	return FaultSnapshot{
		RulesArmed: armed,
		Evals:      f.Evals + o.Evals,
		Injected:   f.Injected + o.Injected,
	}
}

// Snapshot is a point-in-time copy of a monitor's metrics: plain data, safe
// to retain, serialize, or merge across shards.
type Snapshot struct {
	Ingest      IngestSnapshot
	Tree        TreeSnapshot
	Parallel    ParallelSnapshot
	WAL         WALSnapshot
	Watch       WatchSnapshot
	Repl        ReplSnapshot
	Net         NetSnapshot
	Fault       FaultSnapshot
	Cluster     ClusterSnapshot
	Tenant      TenantsSnapshot
	Aggregate   QuerySnapshot
	Pattern     QuerySnapshot
	Correlation QuerySnapshot
}

// Merge returns the element-wise sum of two snapshots (histograms merge
// bucket-wise). Used by sharded monitors to present one metrics surface.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	workers := s.Parallel.Workers
	if o.Parallel.Workers > workers {
		workers = o.Parallel.Workers
	}
	return Snapshot{
		Ingest: IngestSnapshot{
			Samples:            s.Ingest.Samples + o.Ingest.Samples,
			Batches:            s.Ingest.Batches + o.Ingest.Batches,
			BatchSize:          s.Ingest.BatchSize.merge(o.Ingest.BatchSize),
			Accepted:           s.Ingest.Accepted + o.Ingest.Accepted,
			Repaired:           s.Ingest.Repaired + o.Ingest.Repaired,
			Rejected:           s.Ingest.Rejected + o.Ingest.Rejected,
			QuarantinedStreams: s.Ingest.QuarantinedStreams + o.Ingest.QuarantinedStreams,
			QuarantineTrips:    s.Ingest.QuarantineTrips + o.Ingest.QuarantineTrips,
			AppendNanos:        s.Ingest.AppendNanos.merge(o.Ingest.AppendNanos),
		},
		Parallel: ParallelSnapshot{
			Workers:      workers,
			Rounds:       s.Parallel.Rounds + o.Parallel.Rounds,
			SerialRounds: s.Parallel.SerialRounds + o.Parallel.SerialRounds,
			Tasks:        s.Parallel.Tasks + o.Parallel.Tasks,
			QueueDepth:   s.Parallel.QueueDepth.merge(o.Parallel.QueueDepth),
			StageNanos:   s.Parallel.StageNanos.merge(o.Parallel.StageNanos),
		},
		Tree: TreeSnapshot{
			Inserts:     s.Tree.Inserts + o.Tree.Inserts,
			Deletes:     s.Tree.Deletes + o.Tree.Deletes,
			Searches:    s.Tree.Searches + o.Tree.Searches,
			NodeReads:   s.Tree.NodeReads + o.Tree.NodeReads,
			NodeWrites:  s.Tree.NodeWrites + o.Tree.NodeWrites,
			Splits:      s.Tree.Splits + o.Tree.Splits,
			Reinserts:   s.Tree.Reinserts + o.Tree.Reinserts,
			SearchNodes: s.Tree.SearchNodes.merge(o.Tree.SearchNodes),
		},
		WAL:         s.WAL.merge(o.WAL),
		Watch:       s.Watch.merge(o.Watch),
		Repl:        s.Repl.merge(o.Repl),
		Net:         s.Net.merge(o.Net),
		Fault:       s.Fault.merge(o.Fault),
		Cluster:     s.Cluster.merge(o.Cluster),
		Tenant:      s.Tenant.merge(o.Tenant),
		Aggregate:   s.Aggregate.mergeQuery(o.Aggregate),
		Pattern:     s.Pattern.mergeQuery(o.Pattern),
		Correlation: s.Correlation.mergeQuery(o.Correlation),
	}
}

func (q QuerySnapshot) mergeQuery(o QuerySnapshot) QuerySnapshot {
	return QuerySnapshot{
		Queries:    q.Queries + o.Queries,
		Candidates: q.Candidates + o.Candidates,
		Verified:   q.Verified + o.Verified,
		Latency:    q.Latency.merge(o.Latency),
	}
}
