package obs

import (
	"sort"
	"sync"
)

// ClusterMetrics instruments the router/coordinator tier (internal/cluster):
// ring topology, per-shard forwarding health, query fan-out latency and the
// partial-result/degrade path. Like replication and the TCP transport, the
// cluster is a process-level concern — the router's HTTP server merges this
// snapshot into the backend-aggregated one on /metricsz rather than
// threading it through Metrics.
type ClusterMetrics struct {
	// Shards is the configured shard count; RingVNodes the total number of
	// virtual nodes on the consistent-hash ring; ShardsHealthy how many
	// shards passed their most recent health probe.
	Shards, RingVNodes, ShardsHealthy Gauge
	// Fanouts counts scatter-gather query rounds; FanoutNanos is the
	// wall-time distribution of a full round (slowest shard dominates).
	Fanouts     Counter
	FanoutNanos *Histogram
	// PartialResults counts query rounds answered from a subset of shards
	// under the degrade policy; QueryFailures counts rounds that returned
	// an error to the caller.
	PartialResults, QueryFailures Counter
	// IngestRetries counts forwarded ingest attempts beyond the first;
	// RingRemaps counts shard join/leave events that rebuilt the ring.
	IngestRetries, RingRemaps Counter
	// HealthProbes and HealthProbeFailures count background shard health
	// checks and the ones that failed.
	HealthProbes, HealthProbeFailures Counter

	mu       sync.Mutex
	byShard  map[string]*ShardMetrics
	ordering []string
}

// ShardMetrics is the per-shard slice of the cluster instrument set.
type ShardMetrics struct {
	// Healthy is 1 when the shard passed its most recent health probe or
	// forward, 0 when it is failing.
	Healthy Gauge
	// Forwards counts ingest requests forwarded to the shard; Errors
	// counts forwards and query legs that failed against it.
	Forwards, Errors Counter
}

// NewClusterMetrics builds a cluster instrument set with default histogram
// bounds.
func NewClusterMetrics() *ClusterMetrics {
	return &ClusterMetrics{
		FanoutNanos: NewHistogram(LatencyBuckets()),
		byShard:     make(map[string]*ShardMetrics),
	}
}

// Shard returns the named shard's instruments, creating them on first use.
// Safe for concurrent use.
func (c *ClusterMetrics) Shard(name string) *ShardMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.byShard[name]
	if !ok {
		s = &ShardMetrics{}
		c.byShard[name] = s
		c.ordering = append(c.ordering, name)
	}
	return s
}

// Snapshot captures every cluster instrument at one point in time; the
// per-shard section is sorted by shard name for stable output.
func (c *ClusterMetrics) Snapshot() ClusterSnapshot {
	c.mu.Lock()
	names := append([]string(nil), c.ordering...)
	shards := make([]ClusterShardSnapshot, 0, len(names))
	for _, name := range names {
		m := c.byShard[name]
		shards = append(shards, ClusterShardSnapshot{
			Name:     name,
			Healthy:  m.Healthy.Load(),
			Forwards: m.Forwards.Load(),
			Errors:   m.Errors.Load(),
		})
	}
	c.mu.Unlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].Name < shards[j].Name })
	return ClusterSnapshot{
		Shards:              c.Shards.Load(),
		RingVNodes:          c.RingVNodes.Load(),
		ShardsHealthy:       c.ShardsHealthy.Load(),
		Fanouts:             c.Fanouts.Load(),
		FanoutNanos:         c.FanoutNanos.Snapshot(),
		PartialResults:      c.PartialResults.Load(),
		QueryFailures:       c.QueryFailures.Load(),
		IngestRetries:       c.IngestRetries.Load(),
		RingRemaps:          c.RingRemaps.Load(),
		HealthProbes:        c.HealthProbes.Load(),
		HealthProbeFailures: c.HealthProbeFailures.Load(),
		PerShard:            shards,
	}
}

// ClusterShardSnapshot is one shard's row in a ClusterSnapshot.
type ClusterShardSnapshot struct {
	// Name is the shard's configured name (its metric label).
	Name string
	// Healthy, Forwards and Errors mirror ShardMetrics.
	Healthy, Forwards, Errors int64
}

// ClusterSnapshot is the coordinator section of a Snapshot: plain data,
// all-zero with no shards when the process is not a router.
type ClusterSnapshot struct {
	// Shards, RingVNodes and ShardsHealthy describe the ring topology (see
	// ClusterMetrics).
	Shards, RingVNodes, ShardsHealthy int64
	// Fanouts and FanoutNanos count and time scatter-gather rounds.
	Fanouts     int64
	FanoutNanos HistogramSnapshot
	// PartialResults through HealthProbeFailures mirror ClusterMetrics.
	PartialResults, QueryFailures     int64
	IngestRetries, RingRemaps         int64
	HealthProbes, HealthProbeFailures int64
	// PerShard lists each shard's health and traffic, sorted by name.
	PerShard []ClusterShardSnapshot
}

// merge sums counters, keeps the maximum of topology gauges, and merges the
// per-shard sections by shard name (a name appearing on both sides sums).
func (c ClusterSnapshot) merge(o ClusterSnapshot) ClusterSnapshot {
	max := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	byName := make(map[string]ClusterShardSnapshot, len(c.PerShard)+len(o.PerShard))
	for _, s := range c.PerShard {
		byName[s.Name] = s
	}
	for _, s := range o.PerShard {
		if prev, ok := byName[s.Name]; ok {
			s.Healthy = max(prev.Healthy, s.Healthy)
			s.Forwards += prev.Forwards
			s.Errors += prev.Errors
		}
		byName[s.Name] = s
	}
	shards := make([]ClusterShardSnapshot, 0, len(byName))
	for _, s := range byName {
		shards = append(shards, s)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].Name < shards[j].Name })
	return ClusterSnapshot{
		Shards:              max(c.Shards, o.Shards),
		RingVNodes:          max(c.RingVNodes, o.RingVNodes),
		ShardsHealthy:       max(c.ShardsHealthy, o.ShardsHealthy),
		Fanouts:             c.Fanouts + o.Fanouts,
		FanoutNanos:         c.FanoutNanos.merge(o.FanoutNanos),
		PartialResults:      c.PartialResults + o.PartialResults,
		QueryFailures:       c.QueryFailures + o.QueryFailures,
		IngestRetries:       c.IngestRetries + o.IngestRetries,
		RingRemaps:          c.RingRemaps + o.RingRemaps,
		HealthProbes:        c.HealthProbes + o.HealthProbes,
		HealthProbeFailures: c.HealthProbeFailures + o.HealthProbeFailures,
		PerShard:            shards,
	}
}
