package obs

// NetMetrics instruments the binary TCP ingest tier (internal/transport):
// the connection lifecycle behind the max-conns gate, the frame and byte
// flow in each direction, the ack/nack split, and a per-request latency
// histogram. Like replication, the transport is a process-level concern —
// the HTTP server merges this snapshot into the monitor's on /metricsz
// rather than threading it through Metrics.
type NetMetrics struct {
	// ConnsOpen is the number of client connections currently open;
	// ConnsTotal counts every connection ever accepted.
	ConnsOpen  Gauge
	ConnsTotal Counter
	// Handshakes counts completed hellos; VersionMismatches counts hellos
	// nacked for speaking an unknown protocol version.
	Handshakes, VersionMismatches Counter
	// FramesIn and FramesOut count frames read from and written to
	// clients; BytesIn and BytesOut their framed sizes.
	FramesIn, FramesOut Counter
	BytesIn, BytesOut   Counter
	// Samples counts sample values admitted over the wire (the TCP
	// analogue of stardust_ingest_samples_total's wire share).
	Samples Counter
	// Acks and Nacks split the responses to client requests; ProtoErrors
	// counts the nacks that also closed the connection (malformed frames,
	// oversized frames, checksum failures).
	Acks, Nacks, ProtoErrors Counter
	// FrameNanos is the server-side wall time from a request frame's
	// arrival to its response being written.
	FrameNanos *Histogram
}

// NewNetMetrics builds a transport instrument set with default histogram
// bounds.
func NewNetMetrics() *NetMetrics {
	return &NetMetrics{FrameNanos: NewHistogram(LatencyBuckets())}
}

// Snapshot captures every transport instrument at one point in time.
func (n *NetMetrics) Snapshot() NetSnapshot {
	return NetSnapshot{
		ConnsOpen:         n.ConnsOpen.Load(),
		ConnsTotal:        n.ConnsTotal.Load(),
		Handshakes:        n.Handshakes.Load(),
		VersionMismatches: n.VersionMismatches.Load(),
		FramesIn:          n.FramesIn.Load(),
		FramesOut:         n.FramesOut.Load(),
		BytesIn:           n.BytesIn.Load(),
		BytesOut:          n.BytesOut.Load(),
		Samples:           n.Samples.Load(),
		Acks:              n.Acks.Load(),
		Nacks:             n.Nacks.Load(),
		ProtoErrors:       n.ProtoErrors.Load(),
		FrameNanos:        n.FrameNanos.Snapshot(),
	}
}

// NetSnapshot is the binary-transport section of a Snapshot: plain data,
// all-zero when no TCP listener is mounted.
type NetSnapshot struct {
	// ConnsOpen and ConnsTotal describe the connection lifecycle (see
	// NetMetrics).
	ConnsOpen, ConnsTotal int64
	// Handshakes and VersionMismatches split handshake outcomes.
	Handshakes, VersionMismatches int64
	// FramesIn through BytesOut are the frame and byte flow counters.
	FramesIn, FramesOut int64
	BytesIn, BytesOut   int64
	// Samples counts sample values admitted over the wire.
	Samples int64
	// Acks, Nacks and ProtoErrors split the server's responses.
	Acks, Nacks, ProtoErrors int64
	// FrameNanos is the per-request service latency distribution.
	FrameNanos HistogramSnapshot
}

// merge sums counters, sums the open-connections gauge (two listeners'
// connections coexist) and merges the latency histogram.
func (n NetSnapshot) merge(o NetSnapshot) NetSnapshot {
	return NetSnapshot{
		ConnsOpen:         n.ConnsOpen + o.ConnsOpen,
		ConnsTotal:        n.ConnsTotal + o.ConnsTotal,
		Handshakes:        n.Handshakes + o.Handshakes,
		VersionMismatches: n.VersionMismatches + o.VersionMismatches,
		FramesIn:          n.FramesIn + o.FramesIn,
		FramesOut:         n.FramesOut + o.FramesOut,
		BytesIn:           n.BytesIn + o.BytesIn,
		BytesOut:          n.BytesOut + o.BytesOut,
		Samples:           n.Samples + o.Samples,
		Acks:              n.Acks + o.Acks,
		Nacks:             n.Nacks + o.Nacks,
		ProtoErrors:       n.ProtoErrors + o.ProtoErrors,
		FrameNanos:        n.FrameNanos.merge(o.FrameNanos),
	}
}
