package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WriteProm renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4): counters as *_total series, latency histograms in
// seconds with cumulative le buckets, and per-query-class series labeled
// {class="aggregate"|"pattern"|"correlation"}. It is the payload of the
// server's GET /metricsz endpoint.
func WriteProm(w io.Writer, s Snapshot) error {
	p := promWriter{w: w}

	p.counter("stardust_ingest_samples_total", "Ingestion attempts seen by the instrumented path.", s.Ingest.Samples)
	p.counter("stardust_ingest_accepted_total", "Samples admitted unmodified by the resilience guard.", s.Ingest.Accepted)
	p.counter("stardust_ingest_repaired_total", "Samples admitted after policy repair (clamped or gap-filled).", s.Ingest.Repaired)
	p.counter("stardust_ingest_rejected_total", "Samples dropped with a typed error.", s.Ingest.Rejected)
	p.gauge("stardust_ingest_quarantined_streams", "Streams currently quarantined by the guard.", s.Ingest.QuarantinedStreams)
	p.counter("stardust_ingest_quarantine_trips_total", "Quiet-to-quarantined transitions since start.", s.Ingest.QuarantineTrips)
	p.histogramSeconds("stardust_ingest_append_latency_seconds", "Sampled per-append latency (one append in 64 is timed).", s.Ingest.AppendNanos)
	p.counter("stardust_ingest_batches_total", "IngestBatch invocations (amortized batch fast path).", s.Ingest.Batches)
	p.histogramRaw("stardust_ingest_batch_size", "Samples per IngestBatch invocation.", s.Ingest.BatchSize)

	p.gauge("stardust_parallel_workers", "Configured query worker-pool width (1 = serial).", s.Parallel.Workers)
	p.counter("stardust_parallel_rounds_total", "Query stages fanned out across the worker pool.", s.Parallel.Rounds)
	p.counter("stardust_parallel_serial_rounds_total", "Query stages executed inline (serial path or too few items).", s.Parallel.SerialRounds)
	p.counter("stardust_parallel_tasks_total", "Work items processed by query stages (both paths).", s.Parallel.Tasks)
	p.histogramRaw("stardust_parallel_queue_depth", "Items enqueued per parallel round (divide by workers for per-worker share).", s.Parallel.QueueDepth)
	p.histogramSeconds("stardust_parallel_stage_latency_seconds", "Wall time per parallel round (screening/verification stage latency).", s.Parallel.StageNanos)

	p.counter("stardust_wal_appends_total", "Write-ahead-log records appended (0 when durability is off).", s.WAL.Appends)
	p.counter("stardust_wal_appended_bytes_total", "Framed bytes appended to the write-ahead log.", s.WAL.AppendedBytes)
	p.counter("stardust_wal_fsyncs_total", "WAL fsync calls.", s.WAL.Fsyncs)
	p.histogramSeconds("stardust_wal_fsync_latency_seconds", "WAL fsync latency.", s.WAL.FsyncNanos)
	p.histogramRaw("stardust_wal_group_commit_records", "Records made durable per fsync (group-commit batch size).", s.WAL.GroupCommit)
	p.counter("stardust_wal_rotations_total", "WAL segment rollovers.", s.WAL.Rotations)
	p.gauge("stardust_wal_segments_live", "WAL segment files currently on disk.", s.WAL.SegmentsLive)
	p.counter("stardust_wal_segments_trimmed_total", "WAL segments removed by snapshot-watermark GC.", s.WAL.SegmentsTrimmed)
	p.counter("stardust_wal_replayed_records_total", "WAL records applied by crash-recovery replay.", s.WAL.ReplayedRecords)
	p.counter("stardust_wal_replayed_samples_total", "Samples applied by crash-recovery replay.", s.WAL.ReplayedSamples)
	p.gauge("stardust_wal_replay_duration_nanos", "Wall time of the most recent WAL replay (0 when none ran).", s.WAL.ReplayNanos)
	p.gauge("stardust_wal_degraded", "1 while the WAL is detached from a failing disk and ingest is in-memory only.", s.WAL.Degraded)
	p.counter("stardust_wal_dropped_appends_total", "Records dropped (kept in memory only) while the WAL was degraded.", s.WAL.DroppedAppends)
	p.counter("stardust_wal_write_retries_total", "Segment-write retries after transient disk errors.", s.WAL.WriteRetries)
	p.counter("stardust_wal_reattaches_total", "Recoveries from degraded mode back to an on-disk segment.", s.WAL.Reattaches)

	p.help("stardust_watch_active", "Standing watches currently registered, by kind.", "gauge")
	p.printf("stardust_watch_active{kind=%q} %d\n", "aggregate", s.Watch.ActiveAggregate)
	p.printf("stardust_watch_active{kind=%q} %d\n", "pattern", s.Watch.ActivePattern)
	p.printf("stardust_watch_active{kind=%q} %d\n", "correlation", s.Watch.ActiveCorrelation)
	p.counter("stardust_watch_installs_total", "Standing-watch registrations (spec reloads show as paired bursts).", s.Watch.Installs)
	p.counter("stardust_watch_uninstalls_total", "Standing-watch removals.", s.Watch.Uninstalls)
	p.counter("stardust_watch_events_fired_total", "Standing-query events delivered (alarms, matches, pairs).", s.Watch.Fired)
	p.counter("stardust_watch_events_cleared_total", "Aggregate-cleared events delivered (edge-triggered watches).", s.Watch.Cleared)
	p.counter("stardust_watch_evaluations_total", "Standing-query evaluation passes (one per admitted push).", s.Watch.Evaluations)
	p.histogramSeconds("stardust_watch_evaluate_latency_seconds", "Sampled wall time of one standing-query evaluation pass.", s.Watch.EvaluateNanos)

	if len(s.Tenant.PerTenant) > 0 {
		p.help("stardust_tenant_streams", "Stream-space width allocated to the labeled tenant.", "gauge")
		for _, t := range s.Tenant.PerTenant {
			p.printf("stardust_tenant_streams{tenant=%q} %d\n", t.Name, t.Streams)
		}
		p.help("stardust_tenant_samples_total", "Ingestion attempts admitted into the labeled tenant's quota checks.", "counter")
		for _, t := range s.Tenant.PerTenant {
			p.printf("stardust_tenant_samples_total{tenant=%q} %d\n", t.Name, t.Samples)
		}
		p.help("stardust_tenant_rejected_total", "Samples refused by the stream quota or the backend guard.", "counter")
		for _, t := range s.Tenant.PerTenant {
			p.printf("stardust_tenant_rejected_total{tenant=%q} %d\n", t.Name, t.Rejected)
		}
		p.help("stardust_tenant_rate_limited_total", "Samples refused by the tenant's ingest-rate quota.", "counter")
		for _, t := range s.Tenant.PerTenant {
			p.printf("stardust_tenant_rate_limited_total{tenant=%q} %d\n", t.Name, t.RateLimited)
		}
		p.help("stardust_tenant_watches_active", "Standing watches currently installed for the labeled tenant.", "gauge")
		for _, t := range s.Tenant.PerTenant {
			p.printf("stardust_tenant_watches_active{tenant=%q} %d\n", t.Name, t.WatchesActive)
		}
		p.help("stardust_tenant_events_total", "Standing-query events attributed to the labeled tenant.", "counter")
		for _, t := range s.Tenant.PerTenant {
			p.printf("stardust_tenant_events_total{tenant=%q} %d\n", t.Name, t.Events)
		}
	}

	p.gauge("stardust_repl_primary_streams_active", "Replication streams currently open on the primary.", s.Repl.StreamsActive)
	p.counter("stardust_repl_primary_records_served_total", "WAL record frames copied onto replication streams.", s.Repl.RecordsServed)
	p.counter("stardust_repl_primary_bytes_served_total", "Framed bytes copied onto replication streams.", s.Repl.BytesServed)
	p.counter("stardust_repl_primary_heartbeats_sent_total", "Heartbeat frames pushed to idle followers.", s.Repl.HeartbeatsSent)
	p.counter("stardust_repl_primary_snapshots_served_total", "Bootstrap snapshots served to followers.", s.Repl.SnapshotsServed)
	p.gauge("stardust_repl_follower_connected", "1 while the follower has a live stream to its primary.", s.Repl.Connected)
	p.counter("stardust_repl_follower_records_applied_total", "WAL records applied from the replication stream.", s.Repl.RecordsApplied)
	p.counter("stardust_repl_follower_samples_applied_total", "Samples applied from the replication stream.", s.Repl.SamplesApplied)
	p.counter("stardust_repl_follower_bytes_applied_total", "Framed bytes decoded from the replication stream.", s.Repl.BytesApplied)
	p.counter("stardust_repl_follower_reconnects_total", "Replication stream re-establishments after an error or EOF.", s.Repl.Reconnects)
	p.counter("stardust_repl_follower_rebootstraps_total", "Snapshot re-bootstraps forced by the primary trimming past the follower.", s.Repl.Rebootstraps)
	p.gauge("stardust_repl_follower_applied_lsn", "Last WAL record the follower applied.", s.Repl.AppliedLSN)
	p.gauge("stardust_repl_follower_primary_lsn", "Primary's last advertised WAL record.", s.Repl.PrimaryLSN)
	p.gauge("stardust_repl_follower_lag_records", "Replica lag in WAL records (primary LSN minus applied LSN).", s.Repl.LagRecords)
	p.gauge("stardust_repl_follower_last_apply_unix_nanos", "Wall-clock time of the last applied record or heartbeat (0 before the first).", s.Repl.LastApplyUnixNanos)
	p.counter("stardust_repl_health_probes_total", "Failover-watch probes of the primary's /healthz.", s.Repl.HealthProbes)
	p.counter("stardust_repl_health_probe_failures_total", "Failed failover-watch probes (connection error, timeout, or non-200).", s.Repl.HealthProbeFailures)
	p.counter("stardust_repl_promote_total", "Follower-to-primary promotions performed by this process.", s.Repl.Promotions)
	p.gauge("stardust_repl_promote_sealed_lsn", "Last applied LSN at the moment the follower sealed its tail for promotion.", s.Repl.PromoteSealedLSN)
	p.gauge("stardust_repl_promote_unix_nanos", "Wall-clock time of the promotion (0 before any).", s.Repl.PromoteUnixNanos)

	p.gauge("stardust_net_conns_open", "Binary TCP ingest connections currently open.", s.Net.ConnsOpen)
	p.counter("stardust_net_conns_total", "Binary TCP ingest connections accepted since start.", s.Net.ConnsTotal)
	p.counter("stardust_net_handshakes_total", "Completed wire-protocol handshakes.", s.Net.Handshakes)
	p.counter("stardust_net_version_mismatches_total", "Hellos nacked for an unknown protocol version.", s.Net.VersionMismatches)
	p.counter("stardust_net_frames_in_total", "Wire frames read from clients.", s.Net.FramesIn)
	p.counter("stardust_net_frames_out_total", "Wire frames written to clients.", s.Net.FramesOut)
	p.counter("stardust_net_bytes_in_total", "Framed bytes read from clients.", s.Net.BytesIn)
	p.counter("stardust_net_bytes_out_total", "Framed bytes written to clients.", s.Net.BytesOut)
	p.counter("stardust_net_samples_total", "Sample values admitted over the binary wire.", s.Net.Samples)
	p.counter("stardust_net_acks_total", "Requests acknowledged.", s.Net.Acks)
	p.counter("stardust_net_nacks_total", "Requests rejected with a nack.", s.Net.Nacks)
	p.counter("stardust_net_proto_errors_total", "Nacks that closed the connection (malformed, oversized, or corrupt frames).", s.Net.ProtoErrors)
	p.histogramSeconds("stardust_net_frame_latency_seconds", "Server-side wall time from request frame arrival to response write.", s.Net.FrameNanos)

	p.gauge("stardust_fault_rules_armed", "Fault-injection rules currently loaded (0 in production).", s.Fault.RulesArmed)
	p.counter("stardust_fault_evals_total", "Fault injection-point evaluations.", s.Fault.Evals)
	p.counter("stardust_fault_injected_total", "Faults actually injected (errors, delays, torn writes, cut links).", s.Fault.Injected)

	p.gauge("stardust_cluster_shards", "Shards configured on the router's consistent-hash ring (0 when not a router).", s.Cluster.Shards)
	p.gauge("stardust_cluster_ring_vnodes", "Virtual nodes on the consistent-hash ring.", s.Cluster.RingVNodes)
	p.gauge("stardust_cluster_shards_healthy", "Shards that passed their most recent health probe.", s.Cluster.ShardsHealthy)
	p.counter("stardust_cluster_fanouts_total", "Scatter-gather query rounds fanned out to the shards.", s.Cluster.Fanouts)
	p.histogramSeconds("stardust_cluster_fanout_latency_seconds", "Wall time of a full scatter-gather round (slowest shard dominates).", s.Cluster.FanoutNanos)
	p.counter("stardust_cluster_partial_results_total", "Query rounds answered from a subset of shards under the degrade policy.", s.Cluster.PartialResults)
	p.counter("stardust_cluster_query_failures_total", "Scatter-gather rounds that returned an error to the caller.", s.Cluster.QueryFailures)
	p.counter("stardust_cluster_ingest_retries_total", "Forwarded ingest attempts beyond the first (retry/backoff path).", s.Cluster.IngestRetries)
	p.counter("stardust_cluster_ring_remaps_total", "Shard join/leave events that rebuilt the ring.", s.Cluster.RingRemaps)
	p.counter("stardust_cluster_health_probes_total", "Background shard health probes.", s.Cluster.HealthProbes)
	p.counter("stardust_cluster_health_probe_failures_total", "Background shard health probes that failed.", s.Cluster.HealthProbeFailures)
	if len(s.Cluster.PerShard) > 0 {
		p.help("stardust_cluster_shard_healthy", "1 while the labeled shard is passing health probes and forwards.", "gauge")
		for _, sh := range s.Cluster.PerShard {
			p.printf("stardust_cluster_shard_healthy{shard=%q} %d\n", sh.Name, sh.Healthy)
		}
		p.help("stardust_cluster_shard_forwards_total", "Ingest requests forwarded to the labeled shard.", "counter")
		for _, sh := range s.Cluster.PerShard {
			p.printf("stardust_cluster_shard_forwards_total{shard=%q} %d\n", sh.Name, sh.Forwards)
		}
		p.help("stardust_cluster_shard_errors_total", "Forwards and query legs that failed against the labeled shard.", "counter")
		for _, sh := range s.Cluster.PerShard {
			p.printf("stardust_cluster_shard_errors_total{shard=%q} %d\n", sh.Name, sh.Errors)
		}
	}

	p.counter("stardust_index_inserts_total", "R*-tree leaf entries inserted (all levels).", s.Tree.Inserts)
	p.counter("stardust_index_deletes_total", "R*-tree leaf entries deleted (all levels).", s.Tree.Deletes)
	p.counter("stardust_index_searches_total", "R*-tree search traversals (range, sphere, nearest-neighbor).", s.Tree.Searches)
	p.counter("stardust_index_node_reads_total", "R*-tree nodes visited by any operation — the paper's index cost unit.", s.Tree.NodeReads)
	p.counter("stardust_index_node_writes_total", "R*-tree nodes structurally modified.", s.Tree.NodeWrites)
	p.counter("stardust_index_splits_total", "R*-tree node splits.", s.Tree.Splits)
	p.counter("stardust_index_reinserts_total", "R*-tree forced-reinsertion rounds (OverflowTreatment).", s.Tree.Reinserts)
	p.histogramRaw("stardust_index_search_nodes", "Nodes read per search traversal.", s.Tree.SearchNodes)

	classes := []struct {
		name string
		q    QuerySnapshot
	}{
		{"aggregate", s.Aggregate},
		{"pattern", s.Pattern},
		{"correlation", s.Correlation},
	}
	p.help("stardust_query_total", "Query invocations per class.", "counter")
	for _, c := range classes {
		p.sample("stardust_query_total", c.name, float64(c.q.Queries))
	}
	p.help("stardust_query_candidates_total", "Records retrieved by the index screen before verification.", "counter")
	for _, c := range classes {
		p.sample("stardust_query_candidates_total", c.name, float64(c.q.Candidates))
	}
	p.help("stardust_query_verified_total", "Screened records confirmed on raw history.", "counter")
	for _, c := range classes {
		p.sample("stardust_query_verified_total", c.name, float64(c.q.Verified))
	}
	p.help("stardust_query_pruning_power", "Verified over candidates (the paper's precision; 1 when nothing retrieved).", "gauge")
	for _, c := range classes {
		p.sample("stardust_query_pruning_power", c.name, c.q.PruningPower())
	}
	for _, c := range classes {
		p.histogramSecondsLabeled("stardust_query_latency_seconds", "Per-query wall time.", "class", c.name, c.q.Latency)
	}
	return p.err
}

// promWriter accumulates the first write error so callers check once.
type promWriter struct {
	w      io.Writer
	err    error
	helped map[string]bool
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// help emits the HELP/TYPE header once per metric name.
func (p *promWriter) help(name, help, typ string) {
	if p.helped == nil {
		p.helped = make(map[string]bool)
	}
	if p.helped[name] {
		return
	}
	p.helped[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) counter(name, help string, v int64) {
	p.help(name, help, "counter")
	p.printf("%s %d\n", name, v)
}

func (p *promWriter) gauge(name, help string, v int64) {
	p.help(name, help, "gauge")
	p.printf("%s %d\n", name, v)
}

func (p *promWriter) sample(name, class string, v float64) {
	p.printf("%s{class=%q} %s\n", name, class, formatFloat(v))
}

// histogramSeconds renders a nanosecond-valued histogram with bounds and
// sum converted to seconds, per Prometheus convention.
func (p *promWriter) histogramSeconds(name, help string, h HistogramSnapshot) {
	p.histogram(name, help, "", "", h, 1e-9)
}

func (p *promWriter) histogramSecondsLabeled(name, help, labelKey, labelVal string, h HistogramSnapshot) {
	p.histogram(name, help, labelKey, labelVal, h, 1e-9)
}

// histogramRaw renders a histogram whose observations are already in their
// exposition unit (e.g. node counts).
func (p *promWriter) histogramRaw(name, help string, h HistogramSnapshot) {
	p.histogram(name, help, "", "", h, 1)
}

func (p *promWriter) histogram(name, help, labelKey, labelVal string, h HistogramSnapshot, scale float64) {
	p.help(name, help, "histogram")
	label := func(le string) string {
		if labelKey == "" {
			return fmt.Sprintf(`{le=%q}`, le)
		}
		return fmt.Sprintf(`{%s=%q,le=%q}`, labelKey, labelVal, le)
	}
	cum := int64(0)
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		p.printf("%s_bucket%s %d\n", name, label(formatFloat(bound*scale)), cum)
	}
	p.printf("%s_bucket%s %d\n", name, label("+Inf"), h.Count)
	suffix := ""
	if labelKey != "" {
		suffix = fmt.Sprintf(`{%s=%q}`, labelKey, labelVal)
	}
	p.printf("%s_sum%s %s\n", name, suffix, formatFloat(h.Sum*scale))
	p.printf("%s_count%s %d\n", name, suffix, h.Count)
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, no exponent for integers.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
