package obs

// ReplMetrics instruments WAL-shipping replication (internal/replication).
// One side of the struct is active per process: a primary counts what it
// serves to followers, a follower counts what it applies from its primary.
// Replication is a process-level concern, not a per-monitor one, so these
// instruments live with the replication endpoints (the HTTP server merges
// their snapshot into the monitor's on /metricsz) rather than inside
// Metrics.
type ReplMetrics struct {
	// StreamsActive is the number of replication streams currently open on
	// the primary (followers in follow mode plus bounded catch-up reads).
	StreamsActive Gauge
	// RecordsServed and BytesServed count record frames (and their framed
	// bytes) copied onto replication streams by the primary.
	RecordsServed, BytesServed Counter
	// HeartbeatsSent counts heartbeat frames the primary pushed to idle
	// followers; SnapshotsServed counts bootstrap snapshots it served.
	HeartbeatsSent, SnapshotsServed Counter

	// Connected is 1 while the follower has a live stream to its primary.
	Connected Gauge
	// RecordsApplied, SamplesApplied and BytesApplied count what the
	// follower decoded from the stream and applied to its local state.
	RecordsApplied, SamplesApplied, BytesApplied Counter
	// Reconnects counts stream re-establishments after an error or EOF;
	// Rebootstraps counts snapshot re-bootstraps forced by the primary
	// trimming past the follower's position.
	Reconnects, Rebootstraps Counter
	// AppliedLSN is the last record the follower applied; PrimaryLSN is the
	// primary's last advertised LSN; LagRecords is their difference — the
	// replica lag in records that /readyz reports.
	AppliedLSN, PrimaryLSN, LagRecords Gauge
	// LastApplyUnixNanos is the wall-clock time of the last applied record
	// or heartbeat (0 before the first), the basis of the lag-in-seconds
	// readiness signal.
	LastApplyUnixNanos Gauge

	// HealthProbes counts failover-watch probes of the primary's /healthz;
	// HealthProbeFailures counts the probes that failed (connection error,
	// timeout, or non-200).
	HealthProbes, HealthProbeFailures Counter
	// Promotions counts follower-to-primary promotions performed by this
	// process (0 or 1 in practice; a counter so restarts are visible).
	Promotions Counter
	// PromoteSealedLSN is the last LSN the follower had applied when it
	// sealed its tail for promotion; PromoteUnixNanos is the wall-clock
	// promotion time (both 0 before any promotion).
	PromoteSealedLSN, PromoteUnixNanos Gauge
}

// Snapshot captures every replication instrument at one point in time.
func (r *ReplMetrics) Snapshot() ReplSnapshot {
	return ReplSnapshot{
		StreamsActive:       r.StreamsActive.Load(),
		RecordsServed:       r.RecordsServed.Load(),
		BytesServed:         r.BytesServed.Load(),
		HeartbeatsSent:      r.HeartbeatsSent.Load(),
		SnapshotsServed:     r.SnapshotsServed.Load(),
		Connected:           r.Connected.Load(),
		RecordsApplied:      r.RecordsApplied.Load(),
		SamplesApplied:      r.SamplesApplied.Load(),
		BytesApplied:        r.BytesApplied.Load(),
		Reconnects:          r.Reconnects.Load(),
		Rebootstraps:        r.Rebootstraps.Load(),
		AppliedLSN:          r.AppliedLSN.Load(),
		PrimaryLSN:          r.PrimaryLSN.Load(),
		LagRecords:          r.LagRecords.Load(),
		LastApplyUnixNanos:  r.LastApplyUnixNanos.Load(),
		HealthProbes:        r.HealthProbes.Load(),
		HealthProbeFailures: r.HealthProbeFailures.Load(),
		Promotions:          r.Promotions.Load(),
		PromoteSealedLSN:    r.PromoteSealedLSN.Load(),
		PromoteUnixNanos:    r.PromoteUnixNanos.Load(),
	}
}

// ReplSnapshot is the replication section of a Snapshot: plain data,
// all-zero when the process neither serves nor follows a primary.
type ReplSnapshot struct {
	// StreamsActive, RecordsServed, BytesServed, HeartbeatsSent and
	// SnapshotsServed are the primary-side instruments (see ReplMetrics).
	StreamsActive                   int64
	RecordsServed, BytesServed      int64
	HeartbeatsSent, SnapshotsServed int64
	// Connected through LastApplyUnixNanos are the follower-side
	// instruments (see ReplMetrics).
	Connected                                    int64
	RecordsApplied, SamplesApplied, BytesApplied int64
	Reconnects, Rebootstraps                     int64
	AppliedLSN, PrimaryLSN, LagRecords           int64
	LastApplyUnixNanos                           int64
	// HealthProbes through PromoteUnixNanos are the automated-failover
	// instruments (see ReplMetrics).
	HealthProbes, HealthProbeFailures  int64
	Promotions                         int64
	PromoteSealedLSN, PromoteUnixNanos int64
}

// merge sums counters and takes the maximum of gauges — the conservative
// combination when sharded monitors present one metrics surface (in
// practice at most one side of a merge carries replication state).
func (r ReplSnapshot) merge(o ReplSnapshot) ReplSnapshot {
	maxOf := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	return ReplSnapshot{
		StreamsActive:       r.StreamsActive + o.StreamsActive,
		RecordsServed:       r.RecordsServed + o.RecordsServed,
		BytesServed:         r.BytesServed + o.BytesServed,
		HeartbeatsSent:      r.HeartbeatsSent + o.HeartbeatsSent,
		SnapshotsServed:     r.SnapshotsServed + o.SnapshotsServed,
		Connected:           maxOf(r.Connected, o.Connected),
		RecordsApplied:      r.RecordsApplied + o.RecordsApplied,
		SamplesApplied:      r.SamplesApplied + o.SamplesApplied,
		BytesApplied:        r.BytesApplied + o.BytesApplied,
		Reconnects:          r.Reconnects + o.Reconnects,
		Rebootstraps:        r.Rebootstraps + o.Rebootstraps,
		AppliedLSN:          maxOf(r.AppliedLSN, o.AppliedLSN),
		PrimaryLSN:          maxOf(r.PrimaryLSN, o.PrimaryLSN),
		LagRecords:          maxOf(r.LagRecords, o.LagRecords),
		LastApplyUnixNanos:  maxOf(r.LastApplyUnixNanos, o.LastApplyUnixNanos),
		HealthProbes:        r.HealthProbes + o.HealthProbes,
		HealthProbeFailures: r.HealthProbeFailures + o.HealthProbeFailures,
		Promotions:          r.Promotions + o.Promotions,
		PromoteSealedLSN:    maxOf(r.PromoteSealedLSN, o.PromoteSealedLSN),
		PromoteUnixNanos:    maxOf(r.PromoteUnixNanos, o.PromoteUnixNanos),
	}
}
