package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero counter = %d", c.Load())
	}
	if got := c.Inc(); got != 1 {
		t.Fatalf("Inc returned %d, want 1", got)
	}
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d, want 42", c.Load())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Set(3)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d, want 3 (last set wins)", g.Load())
	}
}

func TestSampled(t *testing.T) {
	cases := []struct {
		n    int64
		want bool
	}{
		{0, true}, {1, false}, {63, false}, {64, true},
		{65, false}, {128, true}, {SampleEvery * 1000, true},
	}
	for _, c := range cases {
		if got := Sampled(c.n); got != c.want {
			t.Errorf("Sampled(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		want   []int64 // len(bounds)+1, last = overflow
	}{
		{"at-bounds", []float64{1, 2, 4}, []float64{1, 2, 4}, []int64{1, 1, 1, 0}},
		{"between", []float64{1, 2, 4}, []float64{1.5, 3, 3.9}, []int64{0, 1, 2, 0}},
		{"overflow", []float64{1, 2, 4}, []float64{5, 100}, []int64{0, 0, 0, 2}},
		{"below-first", []float64{1, 2, 4}, []float64{0, 0.5}, []int64{2, 0, 0, 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(c.bounds)
			var sum float64
			for _, v := range c.obs {
				h.Observe(v)
				sum += v
			}
			s := h.Snapshot()
			if s.Count != int64(len(c.obs)) {
				t.Fatalf("count = %d, want %d", s.Count, len(c.obs))
			}
			if s.Sum != sum {
				t.Fatalf("sum = %g, want %g", s.Sum, sum)
			}
			for i, want := range c.want {
				if s.Counts[i] != want {
					t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], want, s.Counts)
				}
			}
		})
	}
}

func TestHistogramQuantile(t *testing.T) {
	cases := []struct {
		name string
		snap HistogramSnapshot
		q    float64
		want float64
	}{
		{
			"median-interpolated",
			HistogramSnapshot{Bounds: []float64{10, 20, 30}, Counts: []int64{10, 10, 10, 0}, Count: 30},
			0.50, 15,
		},
		{
			"p100-last-bound",
			HistogramSnapshot{Bounds: []float64{10, 20, 30}, Counts: []int64{10, 10, 10, 0}, Count: 30},
			1.0, 30,
		},
		{
			"q0-start-of-first-bucket",
			HistogramSnapshot{Bounds: []float64{10, 20, 30}, Counts: []int64{10, 10, 10, 0}, Count: 30},
			0, 0,
		},
		{
			"overflow-reports-last-bound",
			HistogramSnapshot{Bounds: []float64{10}, Counts: []int64{0, 5}, Count: 5},
			0.5, 10,
		},
		{
			"empty-is-zero",
			HistogramSnapshot{Bounds: []float64{10}, Counts: []int64{0, 0}},
			0.5, 0,
		},
		{
			"clamped-above-one",
			HistogramSnapshot{Bounds: []float64{10, 20}, Counts: []int64{4, 0, 0}, Count: 4},
			3.0, 10,
		},
		{
			"skewed-p95",
			HistogramSnapshot{Bounds: []float64{1, 2, 4}, Counts: []int64{90, 0, 10, 0}, Count: 100},
			0.95, 3, // rank 95 lands halfway through the (2,4] bucket
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.snap.Quantile(c.q)
			if math.Abs(got-c.want) > 1e-9 {
				t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
			}
		})
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram([]float64{10})
	if got := h.Snapshot().Mean(); got != 0 {
		t.Fatalf("empty mean = %g", got)
	}
	h.Observe(2)
	h.Observe(4)
	if got := h.Snapshot().Mean(); got != 3 {
		t.Fatalf("mean = %g, want 3", got)
	}
}

// TestHistogramConcurrent exercises the CAS sum accumulation and atomic
// buckets under parallel writers; run with -race.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(seed + float64(i))
			}
		}(float64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestPruningPower(t *testing.T) {
	cases := []struct {
		cand, ver int64
		want      float64
	}{
		{0, 0, 1}, // nothing retrieved: precision 1 by convention
		{100, 50, 0.5},
		{10, 10, 1},
		{8, 0, 0},
	}
	for _, c := range cases {
		q := QuerySnapshot{Candidates: c.cand, Verified: c.ver}
		if got := q.PruningPower(); got != c.want {
			t.Errorf("PruningPower(%d/%d) = %g, want %g", c.ver, c.cand, got, c.want)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewMetrics()
	b := NewMetrics()
	a.Ingest.Samples.Add(100)
	b.Ingest.Samples.Add(28)
	a.Tree.NodeReads.Add(7)
	b.Tree.NodeReads.Add(3)
	a.Pattern.ObserveQuery(10, 4, 1000)
	b.Pattern.ObserveQuery(6, 2, 3000)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Ingest.Samples != 128 {
		t.Fatalf("merged samples = %d", m.Ingest.Samples)
	}
	if m.Tree.NodeReads != 10 {
		t.Fatalf("merged node reads = %d", m.Tree.NodeReads)
	}
	if m.Pattern.Queries != 2 || m.Pattern.Candidates != 16 || m.Pattern.Verified != 6 {
		t.Fatalf("merged pattern class = %+v", m.Pattern)
	}
	if m.Pattern.Latency.Count != 2 || m.Pattern.Latency.Sum != 4000 {
		t.Fatalf("merged latency count=%d sum=%g", m.Pattern.Latency.Count, m.Pattern.Latency.Sum)
	}
}

func TestHistogramMergeMismatchedBounds(t *testing.T) {
	a := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{3, 1, 0}, Count: 4, Sum: 5}
	b := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{2, 0}, Count: 2, Sum: 2}
	m := a.merge(b)
	// Mismatched bounds keep a's buckets and fold b into count/sum only.
	if m.Count != 6 || m.Sum != 7 {
		t.Fatalf("merged count=%d sum=%g", m.Count, m.Sum)
	}
	if m.Counts[0] != 3 {
		t.Fatalf("bucket 0 = %d, want a's 3 (no bucket fold on mismatch)", m.Counts[0])
	}
	var empty HistogramSnapshot
	if got := empty.merge(a); got.Count != 4 {
		t.Fatalf("empty.merge = %+v, want o returned as-is", got)
	}
}

func TestWriteProm(t *testing.T) {
	m := NewMetrics()
	m.Ingest.Samples.Add(128)
	m.Ingest.AppendNanos.Observe(500) // 500ns → 5e-7s bucket
	m.Tree.Inserts.Add(12)
	m.Tree.SearchNodes.Observe(3)
	m.Aggregate.ObserveQuery(1, 1, 1000)
	m.Pattern.ObserveQuery(20, 5, 2000)
	snap := m.Snapshot()
	snap.Ingest.Accepted = 120
	snap.Ingest.Rejected = 8

	var sb strings.Builder
	if err := WriteProm(&sb, snap); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	wantLines := []string{
		"# TYPE stardust_ingest_samples_total counter",
		"stardust_ingest_samples_total 128",
		"stardust_ingest_accepted_total 120",
		"stardust_ingest_rejected_total 8",
		"# TYPE stardust_ingest_append_latency_seconds histogram",
		`stardust_ingest_append_latency_seconds_bucket{le="+Inf"} 1`,
		"stardust_ingest_append_latency_seconds_count 1",
		"stardust_index_inserts_total 12",
		"# TYPE stardust_index_search_nodes histogram",
		`stardust_query_total{class="aggregate"} 1`,
		`stardust_query_total{class="pattern"} 1`,
		`stardust_query_total{class="correlation"} 0`,
		`stardust_query_candidates_total{class="pattern"} 20`,
		`stardust_query_verified_total{class="pattern"} 5`,
		`stardust_query_pruning_power{class="pattern"} 0.25`,
		`stardust_query_latency_seconds_count{class="pattern"} 1`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing line %q", want)
		}
	}

	// The nanos→seconds sum is scaled, not exact: assert the prefix only.
	if !strings.Contains(out, `stardust_query_latency_seconds_sum{class="pattern"} 2.0000`) {
		t.Errorf("output missing scaled latency sum for pattern class")
	}

	// HELP/TYPE headers must appear exactly once per metric name.
	if n := strings.Count(out, "# TYPE stardust_query_total "); n != 1 {
		t.Errorf("stardust_query_total TYPE header appears %d times", n)
	}
	if n := strings.Count(out, "# TYPE stardust_query_latency_seconds "); n != 1 {
		t.Errorf("stardust_query_latency_seconds TYPE header appears %d times", n)
	}

	// Histogram buckets must be cumulative: each le count ≥ the previous.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "stardust_ingest_append_latency_seconds_bucket") {
			continue
		}
		var v int64
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		if _, err := fmtSscan(fields[1], &v); err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
	if prev != 1 {
		t.Fatalf("final cumulative bucket = %d, want 1", prev)
	}
}

// fmtSscan avoids importing fmt just for one parse in the test above.
func fmtSscan(s string, v *int64) (int, error) {
	var n int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errNotDigit
		}
		n = n*10 + int64(r-'0')
	}
	*v = n
	return 1, nil
}

var errNotDigit = errInvalid{}

type errInvalid struct{}

func (errInvalid) Error() string { return "not a digit" }

func TestSampledBatch(t *testing.T) {
	cases := []struct {
		end, n int64
		want   bool
	}{
		{10, 0, false},   // empty batch
		{10, -1, false},  // nonsense size
		{10, 10, false},  // (0, 10]: cumulative counts start at 1, no point yet
		{63, 63, false},  // (0, 63]: still short of the first point
		{64, 1, true},    // ends exactly on a sampling point
		{64, 64, true},   // (0, 64]: first point included
		{63, 10, false},  // (53, 63]: no multiple of 64
		{100, 50, true},  // (50, 100] contains 64
		{130, 2, false},  // (128, 130]: 128 was the previous batch's point
		{190, 60, false}, // (130, 190]: no multiple of 64
		{192, 60, true},  // (132, 192] contains 192
	}
	for _, c := range cases {
		if got := SampledBatch(c.end, c.n); got != c.want {
			t.Errorf("SampledBatch(%d, %d) = %v, want %v", c.end, c.n, got, c.want)
		}
	}
	// Agreement with the per-sample path: a batch crosses a sampling point
	// iff some sample inside it would have been Sampled individually.
	for end := int64(1); end < 300; end++ {
		for n := int64(1); n <= end; n++ {
			want := false
			for k := end - n + 1; k <= end; k++ {
				if Sampled(k) {
					want = true
				}
			}
			if got := SampledBatch(end, n); got != want {
				t.Fatalf("SampledBatch(%d, %d) = %v, exhaustive check says %v", end, n, got, want)
			}
		}
	}
}

func TestParallelMetrics(t *testing.T) {
	m := NewMetrics()
	m.Parallel.Workers.Set(4)
	m.Parallel.ObserveSerial(3)
	m.Parallel.ObserveRound(16, 5000)
	m.Parallel.ObserveRound(8, 3000)

	s := m.Snapshot().Parallel
	if s.Workers != 4 {
		t.Fatalf("workers = %d", s.Workers)
	}
	if s.Rounds != 2 || s.SerialRounds != 1 || s.Tasks != 27 {
		t.Fatalf("rounds=%d serial=%d tasks=%d", s.Rounds, s.SerialRounds, s.Tasks)
	}
	if s.QueueDepth.Count != 2 || s.QueueDepth.Sum != 24 {
		t.Fatalf("queue depth snapshot %+v", s.QueueDepth)
	}
	if s.StageNanos.Count != 2 || s.StageNanos.Sum != 8000 {
		t.Fatalf("stage nanos snapshot %+v", s.StageNanos)
	}

	// Merge: counters sum, workers take the max (a sharded monitor reports
	// the widest pool, not the sum of identical per-shard settings).
	o := NewMetrics()
	o.Parallel.Workers.Set(2)
	o.Parallel.ObserveRound(4, 1000)
	merged := m.Snapshot().Merge(o.Snapshot()).Parallel
	if merged.Workers != 4 {
		t.Fatalf("merged workers = %d, want max 4", merged.Workers)
	}
	if merged.Rounds != 3 || merged.Tasks != 31 {
		t.Fatalf("merged rounds=%d tasks=%d", merged.Rounds, merged.Tasks)
	}
}

func TestIngestBatchMetrics(t *testing.T) {
	m := NewMetrics()
	if got := m.Ingest.Samples.Add(10); got != 10 {
		t.Fatalf("Add returned %d, want running total 10", got)
	}
	m.Ingest.Batches.Inc()
	m.Ingest.BatchSize.Observe(10)
	s := m.Snapshot().Ingest
	if s.Batches != 1 || s.BatchSize.Count != 1 || s.BatchSize.Sum != 10 {
		t.Fatalf("batch ingest snapshot %+v", s)
	}
}
