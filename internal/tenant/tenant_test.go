package tenant

import (
	"errors"
	"strings"
	"testing"
	"time"

	"stardust"
	"stardust/internal/obs"
	"stardust/internal/spec"
)

func newWatcher(t *testing.T, streams int) *stardust.SafeWatcher {
	t.Helper()
	m, err := stardust.New(stardust.Config{Streams: streams, W: 4, Levels: 2, Transform: stardust.Sum})
	if err != nil {
		t.Fatal(err)
	}
	return stardust.NewSafeWatcher(m)
}

type fixture struct {
	reg   *Registry
	w     *stardust.SafeWatcher
	tm    *obs.TenantMetrics
	clock *fakeClock
}

type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newFixture(t *testing.T, streams int) *fixture {
	t.Helper()
	w := newWatcher(t, streams)
	tm := obs.NewTenantMetrics()
	clock := &fakeClock{t: time.Unix(1000, 0)}
	return &fixture{reg: New(w, tm, clock.now), w: w, tm: tm, clock: clock}
}

func tenantRow(t *testing.T, tm *obs.TenantMetrics, name string) obs.TenantSnapshot {
	t.Helper()
	for _, row := range tm.Snapshot().PerTenant {
		if row.Name == name {
			return row
		}
	}
	t.Fatalf("tenant %q has no metrics row", name)
	return obs.TenantSnapshot{}
}

func TestAddAllocatesDisjointSlices(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Add(Config{Name: "a", Streams: 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Add(Config{Name: "b", Streams: 4}); err != nil {
		t.Fatal(err)
	}
	infos := f.reg.Tenants()
	if len(infos) != 2 || infos[0].Base != 0 || infos[1].Base != 3 {
		t.Fatalf("bad allocation: %+v", infos)
	}
	if err := f.reg.Add(Config{Name: "c", Streams: 2}); !errors.Is(err, ErrExhausted) {
		t.Fatalf("overallocation error = %v, want ErrExhausted", err)
	}
	if err := f.reg.Add(Config{Name: "a", Streams: 1}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate error = %v, want ErrDuplicate", err)
	}
	if err := f.reg.Add(Config{Name: "d", Streams: 0}); err == nil {
		t.Fatal("zero-width tenant admitted")
	}
	if row := tenantRow(t, f.tm, "a"); row.Streams != 3 {
		t.Fatalf("streams gauge = %d, want 3", row.Streams)
	}
}

func TestRemoveRetiresSlice(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Add(Config{Name: "a", Streams: 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Remove("a"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("second remove = %v, want ErrUnknownTenant", err)
	}
	// Retired ids are never reused: the next tenant starts at 4.
	if err := f.reg.Add(Config{Name: "b", Streams: 4}); err != nil {
		t.Fatal(err)
	}
	if infos := f.reg.Tenants(); infos[0].Base != 4 {
		t.Fatalf("retired slice reused: %+v", infos)
	}
}

func TestIngestTranslatesAndEnforcesQuota(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Add(Config{Name: "a", Streams: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Add(Config{Name: "b", Streams: 2}); err != nil {
		t.Fatal(err)
	}
	// b's local stream 1 is global stream 3.
	if err := f.reg.Ingest("b", 1, 42); err != nil {
		t.Fatal(err)
	}
	if now := f.w.Now(3); now != 0 {
		t.Fatalf("global stream 3 clock = %d, want 0 (one sample)", now)
	}
	if now := f.w.Now(1); now != -1 {
		t.Fatalf("tenant a's space advanced: clock = %d", now)
	}
	if err := f.reg.Ingest("b", 2, 1); !errors.Is(err, ErrStreamQuota) {
		t.Fatalf("out-of-quota stream error = %v, want ErrStreamQuota", err)
	}
	if err := f.reg.Ingest("ghost", 0, 1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant error = %v, want ErrUnknownTenant", err)
	}
	row := tenantRow(t, f.tm, "b")
	if row.Samples != 1 || row.Rejected != 1 {
		t.Fatalf("samples=%d rejected=%d, want 1, 1", row.Samples, row.Rejected)
	}
}

func TestIngestRateLimit(t *testing.T) {
	f := newFixture(t, 4)
	if err := f.reg.Add(Config{Name: "a", Streams: 1, RatePerSec: 2, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Ingest("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Ingest("a", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Ingest("a", 0, 3); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-rate error = %v, want ErrRateLimited", err)
	}
	f.clock.advance(time.Second)
	if err := f.reg.Ingest("a", 0, 4); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if row := tenantRow(t, f.tm, "a"); row.RateLimited != 1 || row.Samples != 3 {
		t.Fatalf("rate_limited=%d samples=%d, want 1, 3", row.RateLimited, row.Samples)
	}
}

func TestIngestBatchRefusedAsUnit(t *testing.T) {
	f := newFixture(t, 4)
	if err := f.reg.Add(Config{Name: "a", Streams: 1, RatePerSec: 4, Burst: 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.IngestBatch("a", 0, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.IngestBatch("a", 0, []float64{4, 5}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("partial-capacity batch = %v, want ErrRateLimited", err)
	}
	if now := f.w.Now(0); now != 2 {
		t.Fatalf("refused batch partially ingested: clock = %d (want 2: three samples)", now)
	}
}

const tenantSpec = `
tenant a {
    watch cpu on stream 0..1 aggregate window 4 threshold 100 edge on_fire "cpu hot" on_clear "cpu ok";
}
`

func TestLoadInstallsAndAnnotates(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Add(Config{Name: "a", Streams: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Load("base", tenantSpec); err != nil {
		t.Fatal(err)
	}
	specs := f.reg.Specs()
	if len(specs) != 1 || specs[0].Watches != 2 {
		t.Fatalf("specs = %+v", specs)
	}
	if infos := f.reg.Tenants(); infos[0].Watches != 2 {
		t.Fatalf("tenant watch count = %d, want 2", infos[0].Watches)
	}
	var notes []Note
	f.w.SetEventSink(func(evs []stardust.Event) {
		for _, e := range evs {
			notes = append(notes, f.reg.Annotate(e))
		}
	})
	// Alarm tenant a's stream 1 (global 1): sum of window 4 over 100.
	for i := 0; i < 4; i++ {
		if err := f.reg.Ingest("a", 1, 50); err != nil {
			t.Fatal(err)
		}
	}
	if len(notes) == 0 {
		t.Fatal("no events fired")
	}
	n := notes[0]
	if n.Tenant != "a" || n.Spec != "base" || n.Watch != "cpu" || n.Message != "cpu hot" {
		t.Fatalf("bad note: %+v", n)
	}
	if row := tenantRow(t, f.tm, "a"); row.Events != int64(len(notes)) || row.WatchesActive != 2 {
		t.Fatalf("events=%d watches_active=%d, want %d, 2", row.Events, row.WatchesActive, len(notes))
	}
}

func TestLoadRejectsAtomically(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Add(Config{Name: "a", Streams: 2}); err != nil {
		t.Fatal(err)
	}
	before := f.w.Metrics().Watch.ActiveAggregate
	err := f.reg.Load("bad", "watch ok on stream 0 aggregate window 4 threshold 1;\ntenant ghost { }")
	if err == nil {
		t.Fatal("spec with unknown tenant loaded")
	}
	var se *spec.Error
	if !errors.As(err, &se) {
		t.Fatalf("error %T does not carry line/col", err)
	}
	if se.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Line)
	}
	if got := f.w.Metrics().Watch.ActiveAggregate; got != before {
		t.Fatalf("failed load leaked watches: %d -> %d", before, got)
	}
	if len(f.reg.Specs()) != 0 {
		t.Fatal("failed load registered a spec")
	}
}

func TestLoadSwapIsAtomic(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Load("u", "watch one on stream 0 aggregate window 4 threshold 1;"); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Load("u", "watch two on stream 1 aggregate window 8 threshold 2;\nwatch three on stream 2 aggregate window 4 threshold 3;"); err != nil {
		t.Fatal(err)
	}
	specs := f.reg.Specs()
	if len(specs) != 1 || specs[0].Watches != 2 {
		t.Fatalf("after swap: %+v", specs)
	}
	if got := f.w.Metrics().Watch.ActiveAggregate; got != 2 {
		t.Fatalf("active aggregate watches = %d, want 2", got)
	}
	// A failed swap leaves the old revision running.
	if err := f.reg.Load("u", "watch broken pattern query nope radius 1;"); err == nil {
		t.Fatal("broken swap succeeded")
	}
	if s, err := f.reg.Spec("u"); err != nil || s.Watches != 2 || !strings.Contains(s.Source, "two") {
		t.Fatalf("old revision not preserved: %+v, %v", s, err)
	}
}

func TestWatchQuota(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Add(Config{Name: "a", Streams: 4, MaxWatches: 3}); err != nil {
		t.Fatal(err)
	}
	err := f.reg.Load("big", "tenant a { watch w on stream 0..3 aggregate window 4 threshold 1; }")
	if !errors.Is(err, ErrWatchQuota) {
		t.Fatalf("quota breach error = %v, want ErrWatchQuota", err)
	}
	if len(f.reg.Specs()) != 0 || f.reg.Tenants()[0].Watches != 0 {
		t.Fatal("refused spec left residue")
	}
	// A swap is charged net of the old revision: 3 -> 3 stays legal.
	if err := f.reg.Load("ok", "tenant a { watch w on stream 0..2 aggregate window 4 threshold 1; }"); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Load("ok", "tenant a { watch w2 on stream 1..3 aggregate window 8 threshold 2; }"); err != nil {
		t.Fatalf("same-size swap refused: %v", err)
	}
}

func TestRemoveRefusesWhileWatched(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Add(Config{Name: "a", Streams: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Load("s", "tenant a { watch w on stream 0 aggregate window 4 threshold 1; }"); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Remove("a"); !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("busy remove = %v, want ErrTenantBusy", err)
	}
	if err := f.reg.Unload("s"); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Remove("a"); err != nil {
		t.Fatalf("remove after unload: %v", err)
	}
}

func TestUnloadRemovesWatches(t *testing.T) {
	f := newFixture(t, 4)
	if err := f.reg.Load("s", "watch w on stream 0 aggregate window 4 threshold 10;"); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Unload("s"); err != nil {
		t.Fatal(err)
	}
	if err := f.reg.Unload("s"); !errors.Is(err, ErrUnknownSpec) {
		t.Fatalf("second unload = %v, want ErrUnknownSpec", err)
	}
	if got := f.w.Metrics().Watch.ActiveAggregate; got != 0 {
		t.Fatalf("unload leaked %d watches", got)
	}
	// The unloaded watch no longer annotates or fires counters.
	if n := f.reg.Annotate(stardust.Event{WatchID: 1}); n.Attributed() {
		t.Fatalf("stale attribution: %+v", n)
	}
}

func TestParseConfigs(t *testing.T) {
	cfgs, err := ParseConfigs([]byte(`[{"name": "a", "streams": 4, "rate_per_sec": 100}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 || cfgs[0].Name != "a" || cfgs[0].RatePerSec != 100 {
		t.Fatalf("parsed %+v", cfgs)
	}
	if _, err := ParseConfigs([]byte(`[{"name": "a", "streems": 4}]`)); err == nil {
		t.Fatal("typo'd field accepted")
	}
}

// TestConcurrentIngestAndReload races tenant ingestion against spec
// swaps and unloads; run with -race. The invariant is no panic, no
// deadlock, and a clean final state.
func TestConcurrentIngestAndReload(t *testing.T) {
	f := newFixture(t, 8)
	if err := f.reg.Add(Config{Name: "a", Streams: 4}); err != nil {
		t.Fatal(err)
	}
	f.w.SetEventSink(func(evs []stardust.Event) {
		for _, e := range evs {
			f.reg.Annotate(e)
		}
	})
	if err := f.reg.Load("u", tenantSpecVariant(0)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := f.reg.Load("u", tenantSpecVariant(i%3)); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if err := f.reg.Ingest("a", i%4, float64(i)); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	<-done
	if err := f.reg.Unload("u"); err != nil {
		t.Fatal(err)
	}
	if got := f.w.Metrics().Watch.ActiveAggregate; got != 0 {
		t.Fatalf("%d watches leaked", got)
	}
}

func tenantSpecVariant(i int) string {
	switch i {
	case 0:
		return "tenant a { watch w on stream 0..1 aggregate window 4 threshold 50 edge; }"
	case 1:
		return "tenant a { watch w on stream 0..3 aggregate window 8 threshold 100; }"
	default:
		return "tenant a { watch w on stream 2 aggregate window 4 threshold 10 edge on_fire \"hot\"; }"
	}
}
