// Package tenant multiplexes independent namespaces over one Stardust
// backend. Each tenant is allocated a contiguous slice of the backend's
// stream-id space and addresses its streams 0..Streams-1; the registry
// translates ids at the ingestion and watch-installation boundaries, so
// a tenant can neither read nor alarm on another tenant's streams.
//
// The registry is also the serving tier's spec store: monitor specs
// (internal/spec) load, reload and unload as named units, installed
// atomically against the shared watcher — a failed load or a quota
// breach changes nothing. Three quotas protect the shared backend:
//
//   - Streams: the width of the tenant's id slice (enforced at
//     allocation, ingestion and spec compilation).
//   - MaxWatches: how many standing watches the tenant's specs may
//     install (0 = unlimited).
//   - RatePerSec/Burst: a token-bucket ingest rate (internal/resilience;
//     0 = unlimited).
//
// Per-tenant traffic and quota pressure surface as the
// stardust_tenant_* series via obs.TenantMetrics.
package tenant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"stardust"
	"stardust/internal/obs"
	"stardust/internal/resilience"
	"stardust/internal/spec"
)

// Sentinel errors for quota and namespace failures; servers map them to
// HTTP statuses with errors.Is.
var (
	// ErrUnknownTenant marks an operation naming a tenant the registry
	// does not serve.
	ErrUnknownTenant = errors.New("unknown tenant")
	// ErrUnknownSpec marks an unload/inspect of a spec never loaded.
	ErrUnknownSpec = errors.New("unknown spec")
	// ErrStreamQuota marks an ingest targeting a stream outside the
	// tenant's allocated width.
	ErrStreamQuota = errors.New("stream outside tenant quota")
	// ErrWatchQuota marks a spec load that would exceed a tenant's
	// standing-watch quota.
	ErrWatchQuota = errors.New("tenant watch quota exceeded")
	// ErrRateLimited marks samples refused by a tenant's ingest rate.
	ErrRateLimited = errors.New("tenant rate limit exceeded")
	// ErrExhausted marks a tenant admission the backend has no stream
	// space left for.
	ErrExhausted = errors.New("backend stream space exhausted")
	// ErrDuplicate marks an admission reusing an existing tenant name.
	ErrDuplicate = errors.New("duplicate tenant")
	// ErrTenantBusy marks a removal of a tenant that still has spec
	// watches installed (unload the specs first).
	ErrTenantBusy = errors.New("tenant has installed watches")
)

// Config declares one tenant, as read from a -tenants-file entry or a
// POST /tenantz body.
type Config struct {
	// Name identifies the tenant in specs, ingest requests and metrics.
	Name string `json:"name"`
	// Streams is the tenant's stream-space width (required, positive).
	Streams int `json:"streams"`
	// MaxWatches caps the standing watches the tenant's specs may
	// install; 0 leaves them uncapped.
	MaxWatches int `json:"max_watches,omitempty"`
	// RatePerSec and Burst parameterize the ingest token bucket; a zero
	// rate leaves ingestion unlimited, a zero burst defaults to the rate.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      float64 `json:"burst,omitempty"`
}

// ParseConfigs decodes a -tenants-file: a JSON array of Config objects.
// Unknown fields are rejected so a typo'd quota cannot silently become
// "unlimited".
func ParseConfigs(data []byte) ([]Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfgs []Config
	if err := dec.Decode(&cfgs); err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	return cfgs, nil
}

// Info is one tenant's row in GET /tenantz.
type Info struct {
	Name string `json:"name"`
	// Base and Streams are the tenant's slice of the backend id space:
	// global ids [Base, Base+Streams).
	Base    int `json:"base"`
	Streams int `json:"streams"`
	// MaxWatches and RatePerSec echo the configured quotas.
	MaxWatches int     `json:"max_watches,omitempty"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Watches is the number of standing watches currently installed for
	// the tenant by loaded specs.
	Watches int `json:"watches"`
}

// SpecInfo is one loaded spec's row in GET /specz.
type SpecInfo struct {
	Name string `json:"name"`
	// Source is the spec text as loaded.
	Source string `json:"source"`
	// Watches is the number of standing watches the spec installed.
	Watches int `json:"watches"`
}

// Note attributes one watcher event: which tenant and declaration fired
// it, and the declaration's trigger message for that event kind ("" =
// none). The zero Note marks an unattributed event (a watch installed
// through the plain API).
type Note struct {
	// Tenant is the owning namespace ("" for the default namespace —
	// still attributed if Watch is non-empty).
	Tenant string
	// Spec and Watch name the declaration behind the event.
	Spec, Watch string
	// Message is the on_fire or on_clear text matching the event's kind.
	Message string
}

// Attributed reports whether the note names a spec-declared watch.
func (n Note) Attributed() bool { return n.Spec != "" }

// attribution is the leaf-locked watch-id index. Annotate runs inside
// the watcher's event sink (under the watcher lock), so this state has
// its own mutex that no registry path holds while waiting on the
// watcher: attrMu is always the innermost lock.
type attribution struct {
	tenant, spec, watch string
	onFire, onClear     string
	inst                *obs.TenantInstruments // nil for default namespace
}

// tenantState is one admitted tenant.
type tenantState struct {
	cfg     Config
	base    int
	limiter *resilience.RateLimiter
	watches int // standing watches installed by loaded specs
	inst    *obs.TenantInstruments
}

// specUnit is one loaded spec.
type specUnit struct {
	name   string
	source string
	inst   *spec.Installation
	// ids snapshots the installed watch ids (inst.Watches empties on
	// Uninstall, but attribution must still be retired afterwards).
	ids []int
	// perTenant counts the unit's watches by tenant name ("" = default),
	// so unload and swap can return quota.
	perTenant map[string]int
}

// Registry is the multi-tenant control plane over one SafeWatcher. All
// admin operations (Add/Remove/Load/Unload) and tenant ingestion
// serialize behind its mutex; event annotation takes only the leaf
// attribution lock so the watcher's event sink may call it.
type Registry struct {
	mu       sync.Mutex
	w        *stardust.SafeWatcher
	metrics  *obs.TenantMetrics
	clock    func() time.Time
	tenants  map[string]*tenantState
	order    []string
	nextBase int
	specs    map[string]*specUnit
	specOrd  []string

	attrMu sync.Mutex
	attr   map[int]attribution
}

// New builds a registry over the watcher. metrics may be nil (no
// stardust_tenant_* series); clock may be nil (time.Now) and exists so
// rate-quota tests are deterministic.
func New(w *stardust.SafeWatcher, metrics *obs.TenantMetrics, clock func() time.Time) *Registry {
	if clock == nil {
		clock = time.Now
	}
	return &Registry{
		w:       w,
		metrics: metrics,
		clock:   clock,
		tenants: make(map[string]*tenantState),
		specs:   make(map[string]*specUnit),
		attr:    make(map[int]attribution),
	}
}

// Add admits a tenant, allocating the next contiguous slice of the
// backend's stream space. Slices are never reused: removing a tenant
// retires its ids, so a new tenant can never see a predecessor's data.
func (r *Registry) Add(cfg Config) error {
	if cfg.Name == "" {
		return fmt.Errorf("tenant: name must not be empty")
	}
	if cfg.Streams <= 0 {
		return fmt.Errorf("tenant %q: streams must be positive, got %d", cfg.Name, cfg.Streams)
	}
	if cfg.MaxWatches < 0 || cfg.RatePerSec < 0 || cfg.Burst < 0 {
		return fmt.Errorf("tenant %q: quotas must be non-negative", cfg.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[cfg.Name]; ok {
		return fmt.Errorf("tenant %q: %w", cfg.Name, ErrDuplicate)
	}
	if r.nextBase+cfg.Streams > r.w.NumStreams() {
		return fmt.Errorf("tenant %q needs %d streams, %d left: %w",
			cfg.Name, cfg.Streams, r.w.NumStreams()-r.nextBase, ErrExhausted)
	}
	st := &tenantState{
		cfg:     cfg,
		base:    r.nextBase,
		limiter: resilience.NewRateLimiter(cfg.RatePerSec, cfg.Burst, r.clock),
	}
	if r.metrics != nil {
		st.inst = r.metrics.Tenant(cfg.Name)
		st.inst.Streams.Set(int64(cfg.Streams))
	}
	r.nextBase += cfg.Streams
	r.tenants[cfg.Name] = st
	r.order = append(r.order, cfg.Name)
	return nil
}

// Remove retires a tenant. It refuses while loaded specs still have
// watches installed for the tenant — unload those specs first — so a
// removal can never leave orphaned standing queries alarming on ids a
// future tenant might receive.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[name]
	if !ok {
		return fmt.Errorf("tenant %q: %w", name, ErrUnknownTenant)
	}
	if st.watches > 0 {
		return fmt.Errorf("tenant %q has %d spec watches installed: %w", name, st.watches, ErrTenantBusy)
	}
	delete(r.tenants, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	if st.inst != nil {
		st.inst.Streams.Set(0)
	}
	return nil
}

// Tenants lists the admitted tenants in admission order.
func (r *Registry) Tenants() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	infos := make([]Info, 0, len(r.order))
	for _, name := range r.order {
		st := r.tenants[name]
		infos = append(infos, Info{
			Name: name, Base: st.base, Streams: st.cfg.Streams,
			MaxWatches: st.cfg.MaxWatches, RatePerSec: st.cfg.RatePerSec,
			Watches: st.watches,
		})
	}
	return infos
}

// Ingest pushes one tenant-local sample through the shared watcher.
func (r *Registry) Ingest(name string, stream int, v float64) error {
	return r.ingest(name, stream, func(global int) error {
		return r.w.Ingest(global, v)
	}, 1)
}

// IngestBatch pushes a run of tenant-local samples for one stream. The
// whole batch is admitted or refused by the rate quota as a unit (a
// batch larger than the burst bucket is always refused; split it).
func (r *Registry) IngestBatch(name string, stream int, vs []float64) error {
	return r.ingest(name, stream, func(global int) error {
		return r.w.IngestBatch(global, vs)
	}, len(vs))
}

// ingest runs the shared quota path: resolve, stream bounds, rate, push.
func (r *Registry) ingest(name string, stream int, push func(global int) error, n int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[name]
	if !ok {
		return fmt.Errorf("tenant %q: %w", name, ErrUnknownTenant)
	}
	if stream < 0 || stream >= st.cfg.Streams {
		if st.inst != nil {
			st.inst.Rejected.Add(int64(n))
		}
		return fmt.Errorf("tenant %q stream %d outside [0, %d): %w", name, stream, st.cfg.Streams, ErrStreamQuota)
	}
	if !st.limiter.AllowN(n) {
		if st.inst != nil {
			st.inst.RateLimited.Add(int64(n))
		}
		return fmt.Errorf("tenant %q over %g samples/s: %w", name, st.limiter.Limit(), ErrRateLimited)
	}
	if err := push(st.base + stream); err != nil {
		if st.inst != nil {
			st.inst.Rejected.Add(int64(n))
		}
		return err
	}
	if st.inst != nil {
		st.inst.Samples.Add(int64(n))
	}
	return nil
}

// Resolve translates a tenant-local stream id to the backend's global
// id, for read-path queries scoped to a tenant.
func (r *Registry) Resolve(name string, stream int) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[name]
	if !ok {
		return 0, fmt.Errorf("tenant %q: %w", name, ErrUnknownTenant)
	}
	if stream < 0 || stream >= st.cfg.Streams {
		return 0, fmt.Errorf("tenant %q stream %d outside [0, %d): %w", name, stream, st.cfg.Streams, ErrStreamQuota)
	}
	return st.base + stream, nil
}

// Load parses, compiles and installs a spec as a named unit. Loading an
// existing name is an atomic swap: the new revision installs and the old
// one uninstalls inside one watcher critical section, so concurrent
// pushes observe either revision in full, never a mix, and a failed new
// revision leaves the old one running. Parse and compile errors are
// *spec.Error values carrying line/col.
func (r *Registry) Load(name, source string) error {
	if name == "" {
		return fmt.Errorf("spec: name must not be empty")
	}
	parsed, err := spec.Parse(source)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	compiled, err := spec.Compile(parsed, spec.CompileOptions{
		Streams:       r.w.NumStreams(),
		TenantStreams: r.tenantStreamsLocked,
	})
	if err != nil {
		return err
	}
	perTenant := make(map[string]int)
	for _, cw := range compiled.Watches {
		perTenant[cw.Tenant]++
	}
	old := r.specs[name] // nil on first load
	for tn, count := range perTenant {
		if tn == "" {
			continue
		}
		st := r.tenants[tn]
		prev := 0
		if old != nil {
			prev = old.perTenant[tn]
		}
		if st.cfg.MaxWatches > 0 && st.watches-prev+count > st.cfg.MaxWatches {
			return fmt.Errorf("tenant %q: spec needs %d watches, %d of %d in use: %w",
				tn, count, st.watches-prev, st.cfg.MaxWatches, ErrWatchQuota)
		}
	}
	var inst *spec.Installation
	err = r.w.Batch(func(w *stardust.Watcher) error {
		var ierr error
		inst, ierr = spec.Install(w, compiled, r.baseLocked)
		if ierr != nil {
			return ierr
		}
		if old != nil {
			old.inst.Uninstall()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if old != nil {
		r.retireLocked(old)
	}
	unit := &specUnit{name: name, source: source, inst: inst, perTenant: perTenant}
	for _, iw := range inst.Watches {
		unit.ids = append(unit.ids, iw.ID)
	}
	r.specs[name] = unit
	if old == nil {
		r.specOrd = append(r.specOrd, name)
	}
	r.adoptLocked(unit)
	return nil
}

// Unload removes a named spec and all its watches atomically.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	unit, ok := r.specs[name]
	if !ok {
		return fmt.Errorf("spec %q: %w", name, ErrUnknownSpec)
	}
	r.w.Batch(func(*stardust.Watcher) error {
		unit.inst.Uninstall()
		return nil
	})
	r.retireLocked(unit)
	delete(r.specs, name)
	for i, n := range r.specOrd {
		if n == name {
			r.specOrd = append(r.specOrd[:i], r.specOrd[i+1:]...)
			break
		}
	}
	return nil
}

// Specs lists the loaded units in load order.
func (r *Registry) Specs() []SpecInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	infos := make([]SpecInfo, 0, len(r.specOrd))
	for _, name := range r.specOrd {
		u := r.specs[name]
		infos = append(infos, SpecInfo{Name: name, Source: u.source, Watches: len(u.inst.Watches)})
	}
	return infos
}

// Spec returns one loaded unit.
func (r *Registry) Spec(name string) (SpecInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.specs[name]
	if !ok {
		return SpecInfo{}, fmt.Errorf("spec %q: %w", name, ErrUnknownSpec)
	}
	return SpecInfo{Name: name, Source: u.source, Watches: len(u.inst.Watches)}, nil
}

// adoptLocked indexes a freshly installed unit for event attribution and
// charges its watches against tenant quotas and gauges.
func (r *Registry) adoptLocked(unit *specUnit) {
	r.attrMu.Lock()
	for _, iw := range unit.inst.Watches {
		cw := iw.Watch
		a := attribution{
			tenant: cw.Tenant, spec: unit.name, watch: cw.Name,
			onFire: cw.OnFire, onClear: cw.OnClear,
		}
		if st, ok := r.tenants[cw.Tenant]; ok && cw.Tenant != "" {
			a.inst = st.inst
		}
		r.attr[iw.ID] = a
	}
	r.attrMu.Unlock()
	for tn, count := range unit.perTenant {
		if st, ok := r.tenants[tn]; ok && tn != "" {
			st.watches += count
			if st.inst != nil {
				st.inst.WatchesActive.Add(int64(count))
			}
		}
	}
}

// retireLocked drops a unit's attribution entries and returns its quota.
func (r *Registry) retireLocked(unit *specUnit) {
	r.attrMu.Lock()
	for _, id := range unit.ids {
		delete(r.attr, id)
	}
	r.attrMu.Unlock()
	for tn, count := range unit.perTenant {
		if st, ok := r.tenants[tn]; ok && tn != "" {
			st.watches -= count
			if st.inst != nil {
				st.inst.WatchesActive.Add(int64(-count))
			}
		}
	}
}

// tenantStreamsLocked is the spec.CompileOptions tenant resolver.
func (r *Registry) tenantStreamsLocked(name string) (int, bool) {
	st, ok := r.tenants[name]
	if !ok {
		return 0, false
	}
	return st.cfg.Streams, true
}

// baseLocked is the spec.Install stream-base resolver.
func (r *Registry) baseLocked(name string) (int, bool) {
	if name == "" {
		return 0, true
	}
	st, ok := r.tenants[name]
	if !ok {
		return 0, false
	}
	return st.base, true
}

// Annotate attributes one event and, for tenant-owned watches, counts it
// against the tenant's Events series. It takes only the leaf attribution
// lock, so the watcher's event sink (which runs under the watcher lock)
// may call it without deadlocking against Load/Ingest.
func (r *Registry) Annotate(e stardust.Event) Note {
	r.attrMu.Lock()
	a, ok := r.attr[e.WatchID]
	r.attrMu.Unlock()
	if !ok {
		return Note{}
	}
	n := Note{Tenant: a.tenant, Spec: a.spec, Watch: a.watch}
	if e.Kind == stardust.EventAggregateCleared {
		n.Message = a.onClear
	} else {
		n.Message = a.onFire
	}
	if a.inst != nil {
		a.inst.Events.Inc()
	}
	return n
}
