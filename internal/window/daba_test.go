package window

import (
	"math"
	"math/rand"
	"testing"
)

// naiveFold recomputes the window aggregate by a direct left-to-right
// fold — the oracle every Agg query is compared against.
func naiveFold(vs []float64, combine func(a, b float64) float64) float64 {
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = combine(acc, v)
	}
	return acc
}

// TestAggMatchesFoldExhaustive drives every window size from 1 to 33
// through several stream lengths and checks every query — in particular
// every flip boundary — against the left-to-right fold, bit for bit, for
// MAX, MIN and the (min, max) pair. These monoids are exact in floating
// point, so any grouping agrees with the fold exactly.
func TestAggMatchesFoldExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for w := 1; w <= 33; w++ {
		maxAgg, minAgg := NewMaxAgg(w), NewMinAgg(w)
		mmAgg := NewMinMaxAgg(w)
		var stream []float64
		for n := 0; n < 4*w+9; n++ {
			v := math.Floor(rng.Float64()*200-100) / 4
			stream = append(stream, v)
			maxAgg.Push(v)
			minAgg.Push(v)
			mmAgg.Push(MinMaxOf(v))
			if len(stream) < w {
				if maxAgg.Full() {
					t.Fatalf("w=%d n=%d: Full before a complete window", w, n)
				}
				continue
			}
			win := stream[len(stream)-w:]
			wantMax := naiveFold(win, MaxCombine)
			wantMin := naiveFold(win, MinCombine)
			if got := maxAgg.Query(); got != wantMax {
				t.Fatalf("w=%d n=%d: max %v, want %v", w, n, got, wantMax)
			}
			if got := minAgg.Query(); got != wantMin {
				t.Fatalf("w=%d n=%d: min %v, want %v", w, n, got, wantMin)
			}
			if got := mmAgg.Query(); got.Lo != wantMin || got.Hi != wantMax {
				t.Fatalf("w=%d n=%d: minmax %+v, want [%v, %v]", w, n, got, wantMin, wantMax)
			}
		}
	}
}

// TestSumAggExactOnIntegers checks the SUM instantiation against the fold
// on integer-valued streams, where float addition is exact and therefore
// association-independent: any disagreement is an algorithmic bug, not
// rounding.
func TestSumAggExactOnIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{1, 2, 3, 4, 5, 7, 8, 16, 31} {
		sum := NewSumAgg(w)
		var stream []float64
		for n := 0; n < 5*w+7; n++ {
			v := float64(rng.Intn(2001) - 1000)
			stream = append(stream, v)
			sum.Push(v)
			if len(stream) < w {
				continue
			}
			want := naiveFold(stream[len(stream)-w:], SumCombine)
			if got := sum.Query(); got != want {
				t.Fatalf("w=%d n=%d: sum %v, want %v", w, n, got, want)
			}
		}
	}
}

// TestAggMatchesMonoDeque is the in-package differential against the
// retained amortized oracle: on finite data the DABA front must equal the
// monotonic deque's front at every step.
func TestAggMatchesMonoDeque(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, w := range []int{1, 2, 3, 5, 8, 13, 32} {
		maxAgg, minAgg := NewMaxAgg(w), NewMinAgg(w)
		maxDq, minDq := NewMaxDeque(), NewMinDeque()
		for n := 0; n < 6*w+11; n++ {
			v := rng.NormFloat64()
			maxAgg.Push(v)
			minAgg.Push(v)
			tm := int64(n)
			maxDq.Push(tm, v)
			minDq.Push(tm, v)
			maxDq.Expire(tm - int64(w) + 1)
			minDq.Expire(tm - int64(w) + 1)
			if !maxAgg.Full() {
				continue
			}
			if got, want := maxAgg.Query(), maxDq.Front(); got != want {
				t.Fatalf("w=%d n=%d: DABA max %v, deque %v", w, n, got, want)
			}
			if got, want := minAgg.Query(), minDq.Front(); got != want {
				t.Fatalf("w=%d n=%d: DABA min %v, deque %v", w, n, got, want)
			}
		}
	}
}

// TestAggNonFinite pins the documented non-finite semantics: ±Inf behaves
// as an ordinary ordered value and NaN is sticky for exactly one full
// window after it arrives.
func TestAggNonFinite(t *testing.T) {
	w := 4
	maxAgg := NewMaxAgg(w)
	feed := []float64{1, math.Inf(1), 2, 3, 4, 5, math.NaN(), 6, 7, 8, 9, 10}
	var stream []float64
	for _, v := range feed {
		maxAgg.Push(v)
		stream = append(stream, v)
		if !maxAgg.Full() {
			continue
		}
		want := naiveFold(stream[len(stream)-w:], MaxCombine)
		got := maxAgg.Query()
		if math.IsNaN(want) != math.IsNaN(got) {
			t.Fatalf("after %v: NaN-ness %v, want %v", v, got, want)
		}
		if !math.IsNaN(want) && got != want {
			t.Fatalf("after %v: max %v, want %v", v, got, want)
		}
	}
}

// TestAggSignedZeroTies pins tie-breaking: the earlier operand wins, so a
// window of mixed signed zeros reports the zero that arrived first —
// matching a left-to-right fold (and aggregate.Func.Eval) bit for bit.
func TestAggSignedZeroTies(t *testing.T) {
	neg := math.Copysign(0, -1)
	for _, tc := range []struct {
		feed []float64
		want float64 // expected max of the final window of 3
	}{
		{[]float64{neg, 0, 0}, neg},
		{[]float64{0, neg, neg}, 0},
	} {
		agg := NewMaxAgg(3)
		for _, v := range tc.feed {
			agg.Push(v)
		}
		if got := agg.Query(); math.Signbit(got) != math.Signbit(tc.want) {
			t.Fatalf("feed %v: max signbit %v, want %v", tc.feed, got, tc.want)
		}
	}
}

// TestAggSeededFromHistory checks the recovery pattern the watcher relies
// on: an aggregator freshly fed only the last w values answers exactly
// like one that saw the whole stream — block alignment is internal and
// cannot leak into results.
func TestAggSeededFromHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, w := range []int{1, 2, 5, 16, 27} {
		full := NewMaxAgg(w)
		var stream []float64
		for n := 0; n < 3*w+5; n++ {
			v := rng.NormFloat64()
			stream = append(stream, v)
			full.Push(v)
		}
		seeded := NewMaxAgg(w)
		for _, v := range stream[len(stream)-w:] {
			seeded.Push(v)
		}
		if !seeded.Full() {
			t.Fatalf("w=%d: seeded aggregator not full after %d values", w, w)
		}
		if got, want := seeded.Query(), full.Query(); got != want {
			t.Fatalf("w=%d: seeded %v, continuous %v", w, got, want)
		}
	}
}

// TestAggQueryPanicsBeforeFull pins the warm-up contract.
func TestAggQueryPanicsBeforeFull(t *testing.T) {
	agg := NewSumAgg(3)
	agg.Push(1)
	agg.Push(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Query on a partial window did not panic")
		}
	}()
	agg.Query()
}

// TestNewAggPanicsOnBadWindow pins the constructor contract.
func TestNewAggPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAgg(0) did not panic")
		}
	}()
	NewAgg[float64](0, SumCombine)
}

// BenchmarkAggPush measures the flat per-arrival cost of the DABA path
// against the amortized deque (whose occasional O(w) expiry sweeps hide
// inside the mean but dominate the tail).
func BenchmarkAggPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]float64, 4096)
	for i := range vs {
		vs[i] = rng.NormFloat64()
	}
	b.Run("daba-w256", func(b *testing.B) {
		agg := NewMaxAgg(256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agg.Push(vs[i%len(vs)])
		}
	})
	b.Run("monodeque-w256", func(b *testing.B) {
		dq := NewMaxDeque()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dq.Push(int64(i), vs[i%len(vs)])
			dq.Expire(int64(i) - 255)
		}
	})
}
