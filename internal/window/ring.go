// Package window provides the sliding-window substrate: fixed-capacity
// ring buffers over float64 streams and a bounded raw-history buffer used
// to verify candidate alarms against exact aggregates (the post-processing
// step of Algorithms 2-4).
package window

import "fmt"

// Ring is a fixed-capacity circular buffer of float64 values. Pushing into
// a full ring evicts the oldest value. The zero value is unusable; create
// rings with NewRing.
type Ring struct {
	buf   []float64
	head  int // index of the oldest element
	size  int // number of live elements
	total uint64
}

// NewRing returns a ring with the given capacity (> 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("window: non-positive ring capacity %d", capacity))
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of live values (≤ Cap).
func (r *Ring) Len() int { return r.size }

// Full reports whether the ring holds Cap values.
func (r *Ring) Full() bool { return r.size == len(r.buf) }

// Total returns the number of values ever pushed.
func (r *Ring) Total() uint64 { return r.total }

// Push appends v, evicting the oldest value if the ring is full. It returns
// the evicted value and whether an eviction happened.
func (r *Ring) Push(v float64) (evicted float64, ok bool) {
	r.total++
	if r.size < len(r.buf) {
		r.buf[(r.head+r.size)%len(r.buf)] = v
		r.size++
		return 0, false
	}
	evicted = r.buf[r.head]
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
	return evicted, true
}

// At returns the i-th live value, 0 being the oldest. It panics when out of
// range.
func (r *Ring) At(i int) float64 {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("window: ring index %d out of range [0,%d)", i, r.size))
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Last returns the most recently pushed value. It panics on an empty ring.
func (r *Ring) Last() float64 {
	if r.size == 0 {
		panic("window: Last on empty ring")
	}
	return r.At(r.size - 1)
}

// Slice appends the live values, oldest first, to dst and returns the
// extended slice.
func (r *Ring) Slice(dst []float64) []float64 {
	for i := 0; i < r.size; i++ {
		dst = append(dst, r.At(i))
	}
	return dst
}

// CopyLast copies the most recent n live values into dst (oldest of the n
// first) and returns the number copied. It panics if n exceeds Len or
// len(dst) < n.
func (r *Ring) CopyLast(dst []float64, n int) int {
	if n > r.size {
		panic(fmt.Sprintf("window: CopyLast(%d) exceeds size %d", n, r.size))
	}
	if len(dst) < n {
		panic("window: CopyLast destination too small")
	}
	start := r.size - n
	for i := 0; i < n; i++ {
		dst[i] = r.At(start + i)
	}
	return n
}

// Reset empties the ring without releasing its storage.
func (r *Ring) Reset() {
	r.head, r.size, r.total = 0, 0, 0
}
