package window

// MonoDeque is a monotonic deque supporting O(1) amortized sliding-window
// maximum (descending mode) or minimum. Values are pushed with their
// discrete time; entries outside the window are dropped with Expire.
//
// The hot paths now run on Agg (worst-case O(1); the amortized deque's
// occasional O(w) sweeps land exactly under burst load). MonoDeque is
// retained as the differential oracle the Agg tests and FuzzDABAParity
// compare against — an independent implementation with a long history in
// this repo makes disagreements meaningful.
type MonoDeque struct {
	desc  bool
	times []int64
	vals  []float64
}

// NewMaxDeque returns a deque whose Front is the window maximum.
func NewMaxDeque() *MonoDeque { return &MonoDeque{desc: true} }

// NewMinDeque returns a deque whose Front is the window minimum.
func NewMinDeque() *MonoDeque { return &MonoDeque{desc: false} }

// Push appends the value observed at time t, evicting dominated entries.
func (m *MonoDeque) Push(t int64, v float64) {
	for len(m.vals) > 0 {
		last := m.vals[len(m.vals)-1]
		if (m.desc && last <= v) || (!m.desc && last >= v) {
			m.times = m.times[:len(m.times)-1]
			m.vals = m.vals[:len(m.vals)-1]
			continue
		}
		break
	}
	m.times = append(m.times, t)
	m.vals = append(m.vals, v)
}

// Expire drops entries older than the window start time.
func (m *MonoDeque) Expire(start int64) {
	i := 0
	for i < len(m.times) && m.times[i] < start {
		i++
	}
	m.times = m.times[i:]
	m.vals = m.vals[i:]
}

// Front returns the current window extremum. It panics on an empty deque.
func (m *MonoDeque) Front() float64 {
	if len(m.vals) == 0 {
		panic("window: Front on empty MonoDeque")
	}
	return m.vals[0]
}

// Len returns the number of retained entries.
func (m *MonoDeque) Len() int { return len(m.vals) }
