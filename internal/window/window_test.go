package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 || r.Len() != 0 || r.Full() {
		t.Fatalf("fresh ring state wrong: cap=%d len=%d", r.Cap(), r.Len())
	}
	r.Push(1)
	r.Push(2)
	if r.Len() != 2 || r.Full() {
		t.Fatalf("len = %d", r.Len())
	}
	if r.At(0) != 1 || r.At(1) != 2 || r.Last() != 2 {
		t.Fatal("ordering wrong")
	}
	r.Push(3)
	if !r.Full() {
		t.Fatal("should be full")
	}
	ev, ok := r.Push(4)
	if !ok || ev != 1 {
		t.Fatalf("eviction = (%g, %v), want (1, true)", ev, ok)
	}
	if r.At(0) != 2 || r.At(2) != 4 {
		t.Fatalf("post-eviction order wrong: %v", r.Slice(nil))
	}
	if r.Total() != 4 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) should panic")
		}
	}()
	NewRing(0)
}

func TestRingAtOutOfRangePanics(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("At(1) on 1-element ring should panic")
		}
	}()
	r.At(1)
}

func TestRingLastEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Last on empty ring should panic")
		}
	}()
	NewRing(2).Last()
}

func TestRingCopyLast(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Push(float64(i))
	}
	dst := make([]float64, 3)
	r.CopyLast(dst, 3)
	if dst[0] != 4 || dst[1] != 5 || dst[2] != 6 {
		t.Fatalf("CopyLast = %v", dst)
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRingWrapOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(16)
		n := rng.Intn(100)
		r := NewRing(capacity)
		vals := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := rng.Float64()
			vals = append(vals, v)
			r.Push(v)
		}
		got := r.Slice(nil)
		start := len(vals) - r.Len()
		for i, v := range got {
			if vals[start+i] != v {
				return false
			}
		}
		return r.Len() == min(capacity, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryTimes(t *testing.T) {
	h := NewHistory(4)
	if h.Now() != -1 || h.OldestTime() != -1 {
		t.Fatal("empty history times wrong")
	}
	for i := 0; i < 6; i++ {
		h.Append(float64(i * 10))
	}
	if h.Now() != 5 {
		t.Fatalf("now = %d, want 5", h.Now())
	}
	if h.OldestTime() != 2 {
		t.Fatalf("oldest = %d, want 2", h.OldestTime())
	}
	if v, ok := h.At(3); !ok || v != 30 {
		t.Fatalf("At(3) = (%g, %v)", v, ok)
	}
	if _, ok := h.At(1); ok {
		t.Fatal("evicted time should not be readable")
	}
	if _, ok := h.At(6); ok {
		t.Fatal("future time should not be readable")
	}
}

func TestHistoryRange(t *testing.T) {
	h := NewHistory(8)
	for i := 0; i < 8; i++ {
		h.Append(float64(i))
	}
	got, err := h.Range(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v", got)
		}
	}
	if _, err := h.Range(5, 2); err == nil {
		t.Fatal("inverted range should fail")
	}
	if _, err := h.Range(0, 9); err == nil {
		t.Fatal("future range should fail")
	}
	h.Append(99) // evicts time 0
	if _, err := h.Range(0, 3); err == nil {
		t.Fatal("evicted range should fail")
	}
}

func TestHistoryLast(t *testing.T) {
	h := NewHistory(4)
	for i := 1; i <= 4; i++ {
		h.Append(float64(i))
	}
	got, err := h.Last(2)
	if err != nil || got[0] != 3 || got[1] != 4 {
		t.Fatalf("Last(2) = %v, %v", got, err)
	}
	if _, err := h.Last(5); err == nil {
		t.Fatal("Last beyond retention should fail")
	}
	if _, err := h.Last(0); err == nil {
		t.Fatal("Last(0) should fail")
	}
}

func TestHistoryRangeMatchesAppendedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 4 + rng.Intn(20)
		n := 1 + rng.Intn(60)
		h := NewHistory(capacity)
		all := make([]float64, n)
		for i := range all {
			all[i] = rng.Float64()
			h.Append(all[i])
		}
		lo := h.OldestTime()
		hi := h.Now()
		t1 := lo + int64(rng.Intn(int(hi-lo)+1))
		t2 := t1 + int64(rng.Intn(int(hi-t1)+1))
		got, err := h.Range(t1, t2)
		if err != nil {
			return false
		}
		for i, v := range got {
			if all[t1+int64(i)] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestHistoryLenCap(t *testing.T) {
	h := NewHistory(4)
	if h.Len() != 0 || h.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d", h.Len(), h.Cap())
	}
	h.Append(1)
	if h.Len() != 1 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestRestoreHistory(t *testing.T) {
	// A history that observed times 0..9 with capacity 4 retains 6..9.
	h, err := RestoreHistory(4, 6, []float64{60, 70, 80, 90})
	if err != nil {
		t.Fatal(err)
	}
	if h.Now() != 9 || h.OldestTime() != 6 {
		t.Fatalf("times = %d..%d", h.OldestTime(), h.Now())
	}
	if v, ok := h.At(7); !ok || v != 70 {
		t.Fatalf("At(7) = %g, %v", v, ok)
	}
	// Continue appending; absolute times keep advancing.
	h.Append(100)
	if h.Now() != 10 || h.OldestTime() != 7 {
		t.Fatalf("post-append times = %d..%d", h.OldestTime(), h.Now())
	}
	got := h.Values(nil)
	if len(got) != 4 || got[3] != 100 {
		t.Fatalf("values = %v", got)
	}
}

func TestRestoreHistoryErrors(t *testing.T) {
	if _, err := RestoreHistory(2, 0, []float64{1, 2, 3}); err == nil {
		t.Fatal("overfull restore should fail")
	}
	if _, err := RestoreHistory(4, -1, []float64{1}); err == nil {
		t.Fatal("negative first time should fail")
	}
	h, err := RestoreHistory(4, 0, nil)
	if err != nil || h.Now() != -1 {
		t.Fatalf("empty restore: %v, now=%d", err, h.Now())
	}
}

func TestRingCopyLastPanics(t *testing.T) {
	r := NewRing(4)
	r.Push(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CopyLast beyond size should panic")
			}
		}()
		r.CopyLast(make([]float64, 2), 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CopyLast into small dst should panic")
			}
		}()
		r.CopyLast(make([]float64, 0), 1)
	}()
}
