package window

import "fmt"

// Agg is a sliding-window aggregator with worst-case O(1) time per
// operation, after the DABA construction of Tangwongsan, Hirzel &
// Schneider ("In-Order Sliding-Window Aggregation in Worst-Case Constant
// Time"). It maintains the aggregate of the most recent w values of a
// stream under any associative combine function — no inverse is required,
// so MAX and MIN qualify — and, unlike the amortized monotonic-deque or
// two-stack approaches, never performs an O(w) sweep on any single
// arrival: the classic two-stack flip is pre-scheduled, one combine per
// arrival, so the latency of Push is flat even under the burst conditions
// Stardust exists to detect.
//
// The construction specializes DABA to Stardust's workload, where every
// window has a fixed size w and slides by one on each arrival (general
// DABA also supports variable-occupancy FIFO windows). Time is split into
// blocks of h = ⌊w/2⌋ arrivals. For each block the aggregator keeps the
// raw values, the running prefix aggregates (one combine per Push), and
// the suffix aggregates, which are built right-to-left one combine per
// Push during the NEXT block — the de-amortized flip. Because a window of
// size w ≥ 2h cannot start inside block k until at least 2h−1 arrivals
// after block k began, the suffix build always completes before the first
// query needs it (the DABA invariant; see DESIGN.md, "Sliding-window
// aggregation"). A query then stitches the window from at most four
// ready-made pieces: one suffix aggregate, at most one whole-block total,
// and one prefix aggregate.
//
// Combine functions must be associative. They need not be commutative:
// pieces are always combined in stream order. For IEEE-754 floating
// point, MIN/MAX-style combines (see MaxCombine) produce results
// bit-identical to a direct left-to-right fold under any grouping;
// SUM does not, because float addition is not associative — see SumAgg
// for the contract.
type Agg[T any] struct {
	w       int
	h       int64
	combine func(T, T) T
	n       int64 // values pushed so far
	last    T     // most recent value (serves w == 1 directly)
	slots   [aggSlots]aggBlock[T]
}

// aggSlots is the number of block generations kept live. A query touches
// blocks j..c with c−j ≤ 2 and the flip writes into block c−1, so three
// generations are load-bearing; the fourth is slack so a freshly reset
// slot can never alias a block still referenced within the same Push.
const aggSlots = 4

// aggBlock holds one block generation of h values.
type aggBlock[T any] struct {
	vals []T // raw values, consumed by the scheduled suffix build
	pref []T // pref[i] = v[start] ⊕ … ⊕ v[start+i]
	suff []T // suff[i] = v[start+i] ⊕ … ⊕ v[start+h−1]
}

// NewAgg returns a worst-case O(1) aggregator over a sliding window of
// size w under the associative combine. It panics on non-positive w.
func NewAgg[T any](w int, combine func(T, T) T) *Agg[T] {
	if w <= 0 {
		panic(fmt.Sprintf("window: non-positive aggregation window %d", w))
	}
	g := &Agg[T]{w: w, h: int64(w / 2), combine: combine}
	for s := range g.slots {
		g.slots[s] = aggBlock[T]{
			vals: make([]T, g.h),
			pref: make([]T, g.h),
			suff: make([]T, g.h),
		}
	}
	return g
}

// Window returns the configured window size w.
func (g *Agg[T]) Window() int { return g.w }

// Count returns how many values have been pushed.
func (g *Agg[T]) Count() int64 { return g.n }

// Full reports whether a complete window has been observed, i.e. Query is
// answerable.
func (g *Agg[T]) Full() bool { return g.n >= int64(g.w) }

// Push appends the next value of the stream in O(1) worst case: one
// combine extends the current block's prefix aggregates and one combine
// advances the scheduled suffix build of the previous block.
func (g *Agg[T]) Push(v T) {
	pos := g.n
	g.n++
	g.last = v
	if g.h == 0 { // w == 1: the window is the last value
		return
	}
	c := pos / g.h // current block
	i := pos % g.h // offset within it
	blk := &g.slots[c%aggSlots]
	blk.vals[i] = v
	if i == 0 {
		blk.pref[0] = v
	} else {
		blk.pref[i] = g.combine(blk.pref[i-1], v)
	}
	// The de-amortized flip: during block c, rebuild block c−1's suffix
	// aggregates right to left, exactly one combine per arrival. The build
	// finishes with suff[0] on the last arrival of block c — at or before
	// the first query whose window starts inside block c−1.
	if c > 0 {
		prev := &g.slots[(c-1)%aggSlots]
		k := g.h - 1 - i
		if k == g.h-1 {
			prev.suff[k] = prev.vals[k]
		} else {
			prev.suff[k] = g.combine(prev.vals[k], prev.suff[k+1])
		}
	}
}

// Query returns the aggregate of the most recent w values in O(1) worst
// case, stitching at most one suffix aggregate, one whole-block total and
// one prefix aggregate in stream order. It panics unless Full.
func (g *Agg[T]) Query() T {
	if !g.Full() {
		panic(fmt.Sprintf("window: Query after %d of %d values", g.n, g.w))
	}
	if g.h == 0 {
		return g.last
	}
	t := g.n - 1          // newest position
	s := g.n - int64(g.w) // oldest position in the window
	j, off := s/g.h, s%g.h
	c := t / g.h
	// The window's oldest block contributes its suffix from off. With
	// w ≥ 2h the start block is always strictly behind the current block
	// (c − j ∈ {1, 2}), so the suffix build of block j has completed.
	res := g.slots[j%aggSlots].suff[off]
	for k := j + 1; k < c; k++ { // at most one full middle block
		mid := &g.slots[k%aggSlots]
		res = g.combine(res, mid.pref[g.h-1])
	}
	return g.combine(res, g.slots[c%aggSlots].pref[t%g.h])
}
