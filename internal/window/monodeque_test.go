package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMonoDequeMaxBasics(t *testing.T) {
	d := NewMaxDeque()
	d.Push(0, 3)
	d.Push(1, 1)
	d.Push(2, 2)
	if d.Front() != 3 {
		t.Fatalf("front = %g, want 3", d.Front())
	}
	d.Expire(1) // drop the 3
	if d.Front() != 2 {
		t.Fatalf("front = %g, want 2 (the 1 was dominated)", d.Front())
	}
}

func TestMonoDequeMinBasics(t *testing.T) {
	d := NewMinDeque()
	d.Push(0, 3)
	d.Push(1, 5)
	d.Push(2, 1)
	if d.Front() != 1 {
		t.Fatalf("front = %g, want 1", d.Front())
	}
	if d.Len() != 1 {
		t.Fatalf("len = %d: dominated entries should be gone", d.Len())
	}
}

func TestMonoDequeEmptyFrontPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Front on empty deque should panic")
		}
	}()
	NewMaxDeque().Front()
}

// TestMonoDequeMatchesBruteForce slides a window over random data and
// checks both extrema against direct scans.
func TestMonoDequeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(20)
		n := 50 + rng.Intn(200)
		maxD, minD := NewMaxDeque(), NewMinDeque()
		var data []float64
		for i := 0; i < n; i++ {
			v := rng.Float64() * 100
			data = append(data, v)
			maxD.Push(int64(i), v)
			minD.Push(int64(i), v)
			maxD.Expire(int64(i) - int64(w) + 1)
			minD.Expire(int64(i) - int64(w) + 1)
			start := i - w + 1
			if start < 0 {
				start = 0
			}
			lo, hi := data[start], data[start]
			for _, x := range data[start : i+1] {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
			if maxD.Front() != hi || minD.Front() != lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
