package window

import "fmt"

// History is a bounded raw-value history for one stream. Stardust keeps the
// last N raw values so that a candidate alarm or pattern match (whose
// approximate aggregate exceeded the threshold) can be verified against the
// exact aggregate before being reported. Values are addressed by absolute
// discrete time: the t-th value ever appended has time t (0-based).
type History struct {
	ring *Ring
}

// NewHistory returns a history retaining the most recent n values.
func NewHistory(n int) *History {
	return &History{ring: NewRing(n)}
}

// Append records v as the value at the next discrete time step.
func (h *History) Append(v float64) { h.ring.Push(v) }

// Now returns the discrete time of the most recent value, or -1 if empty.
func (h *History) Now() int64 { return int64(h.ring.Total()) - 1 }

// Len returns the number of retained values.
func (h *History) Len() int { return h.ring.Len() }

// Cap returns the retention capacity.
func (h *History) Cap() int { return h.ring.Cap() }

// OldestTime returns the discrete time of the oldest retained value, or -1
// if empty.
func (h *History) OldestTime() int64 {
	if h.ring.Len() == 0 {
		return -1
	}
	return int64(h.ring.Total()) - int64(h.ring.Len())
}

// At returns the value recorded at absolute time t. ok is false when t is
// outside the retained range.
func (h *History) At(t int64) (v float64, ok bool) {
	oldest := h.OldestTime()
	if t < oldest || t > h.Now() || oldest < 0 {
		return 0, false
	}
	return h.ring.At(int(t - oldest)), true
}

// Range copies the values x[t1 : t2] (inclusive absolute times) into a new
// slice. It returns an error when any part of the range has been evicted or
// not yet observed.
func (h *History) Range(t1, t2 int64) ([]float64, error) {
	if t1 > t2 {
		return nil, fmt.Errorf("window: inverted range [%d, %d]", t1, t2)
	}
	if t1 < h.OldestTime() || h.OldestTime() < 0 {
		return nil, fmt.Errorf("window: range start %d evicted (oldest retained %d)", t1, h.OldestTime())
	}
	if t2 > h.Now() {
		return nil, fmt.Errorf("window: range end %d beyond now %d", t2, h.Now())
	}
	out := make([]float64, 0, t2-t1+1)
	base := h.OldestTime()
	for t := t1; t <= t2; t++ {
		out = append(out, h.ring.At(int(t-base)))
	}
	return out, nil
}

// Last returns the most recent w values, oldest first. It returns an error
// when fewer than w values are retained.
func (h *History) Last(w int) ([]float64, error) {
	if w <= 0 {
		return nil, fmt.Errorf("window: non-positive window %d", w)
	}
	if w > h.ring.Len() {
		return nil, fmt.Errorf("window: window %d exceeds retained history %d", w, h.ring.Len())
	}
	out := make([]float64, w)
	h.ring.CopyLast(out, w)
	return out, nil
}

// RestoreHistory reconstructs a history with the given retention capacity
// whose oldest retained value was observed at absolute time firstTime and
// whose retained values are vs (oldest first). It is the inverse of
// snapshotting a history as (OldestTime, values): the restored history
// reports the same Now, OldestTime and contents.
func RestoreHistory(capacity int, firstTime int64, vs []float64) (*History, error) {
	if len(vs) > capacity {
		return nil, fmt.Errorf("window: %d values exceed capacity %d", len(vs), capacity)
	}
	if firstTime < 0 && len(vs) > 0 {
		return nil, fmt.Errorf("window: negative first time %d", firstTime)
	}
	h := NewHistory(capacity)
	for _, v := range vs {
		h.ring.Push(v)
	}
	// Account for the values that were observed and already evicted.
	h.ring.total = uint64(firstTime) + uint64(len(vs))
	return h, nil
}

// Values appends the retained values (oldest first) to dst.
func (h *History) Values(dst []float64) []float64 {
	return h.ring.Slice(dst)
}
