package window

import "math"

// This file instantiates the Agg monoids Stardust's aggregate transforms
// need: SUM, MAX, MIN and the joint (min, max) pair behind SPREAD. The
// comparison combines are written to match a direct left-to-right fold of
// internal/aggregate.Func.Eval bit for bit — same tie-breaking (the
// earlier value wins, so signed zeros are reproduced) — which is what
// makes swapping Agg in behind existing call sites byte-identical for
// MAX, MIN and SPREAD. NaNs are sticky: any NaN operand yields NaN, so
// results are independent of grouping even on non-finite inputs.

// MaxCombine is the MAX monoid: the larger operand, the earlier on ties
// (reproducing Eval's fold exactly, including −0 vs +0), NaN if either
// operand is NaN.
func MaxCombine(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if b > a {
		return b
	}
	return a
}

// MinCombine is the MIN monoid: the smaller operand, the earlier on ties,
// NaN if either operand is NaN.
func MinCombine(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if b < a {
		return b
	}
	return a
}

// SumCombine is the SUM monoid. Float addition is associative only up to
// rounding, so a SumAgg query can differ from a left-to-right fold in the
// last ulp; call sites that pin byte-identical output against a direct
// recomputation (the aggregate-watch verification path) must keep the
// fold for SUM — see DESIGN.md, "Sliding-window aggregation".
func SumCombine(a, b float64) float64 { return a + b }

// MinMax is the joint (min, max) feature SPREAD aggregates: carrying the
// pair is what lets window halves merge exactly (Lemma 4.1), and the
// scalar spread Hi−Lo is derived only at the end.
type MinMax struct {
	Lo, Hi float64
}

// MinMaxOf lifts a single value into the (min, max) monoid.
func MinMaxOf(v float64) MinMax { return MinMax{Lo: v, Hi: v} }

// Spread returns the scalar spread Hi − Lo.
func (m MinMax) Spread() float64 { return m.Hi - m.Lo }

// MinMaxCombine combines two (min, max) pairs component-wise under
// MinCombine and MaxCombine.
func MinMaxCombine(a, b MinMax) MinMax {
	return MinMax{Lo: MinCombine(a.Lo, b.Lo), Hi: MaxCombine(a.Hi, b.Hi)}
}

// NewMaxAgg returns a worst-case O(1) sliding MAX over windows of size w.
func NewMaxAgg(w int) *Agg[float64] { return NewAgg(w, MaxCombine) }

// NewMinAgg returns a worst-case O(1) sliding MIN over windows of size w.
func NewMinAgg(w int) *Agg[float64] { return NewAgg(w, MinCombine) }

// NewSumAgg returns a worst-case O(1) sliding SUM over windows of size w.
// See SumCombine for the floating-point association contract.
func NewSumAgg(w int) *Agg[float64] { return NewAgg(w, SumCombine) }

// NewMinMaxAgg returns a worst-case O(1) sliding (min, max) pair over
// windows of size w — the aggregator behind SPREAD.
func NewMinMaxAgg(w int) *Agg[MinMax] { return NewAgg(w, MinMaxCombine) }
