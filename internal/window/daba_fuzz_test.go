package window

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDABAParity is the three-way differential oracle for the DABA
// aggregator: every prefix of a fuzzer-chosen stream is checked against
// (a) a naive left-to-right fold over the trailing window and (b) the
// retained MonoDeque oracle, across MAX, MIN, the (min, max) pair and
// SUM. The value decoder deliberately emits NaN and ±Inf alongside
// finite values: MAX/MIN/SPREAD must agree with the fold bit for bit
// under the sticky-NaN combine on ANY input, while SUM is checked on the
// exactly-representable integer lattice (where float addition is
// association-free) plus the non-finite cases, whose outcome (±Inf or
// NaN) is also association-independent.
func FuzzDABAParity(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(1), []byte{200, 200, 13})
	f.Add(uint8(16), []byte{250, 0, 251, 1, 252, 2, 250, 3, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, wRaw uint8, data []byte) {
		w := int(wRaw%48) + 1
		maxAgg, minAgg, sumAgg := NewMaxAgg(w), NewMinAgg(w), NewSumAgg(w)
		mmAgg := NewMinMaxAgg(w)
		maxDq, minDq := NewMaxDeque(), NewMinDeque()

		var stream []float64
		for n := 0; n+2 <= len(data) && n/2 < 4096; n += 2 {
			v := decodeFuzzValue(binary.LittleEndian.Uint16(data[n:]))
			stream = append(stream, v)
			maxAgg.Push(v)
			minAgg.Push(v)
			sumAgg.Push(v)
			mmAgg.Push(MinMaxOf(v))
			tm := int64(len(stream) - 1)
			maxDq.Push(tm, v)
			minDq.Push(tm, v)
			maxDq.Expire(tm - int64(w) + 1)
			minDq.Expire(tm - int64(w) + 1)

			if len(stream) < w {
				if maxAgg.Full() {
					t.Fatalf("w=%d n=%d: Full before a complete window", w, len(stream))
				}
				continue
			}
			win := stream[len(stream)-w:]
			wantMax := naiveFold(win, MaxCombine)
			wantMin := naiveFold(win, MinCombine)
			checkSameFloat(t, "max", maxAgg.Query(), wantMax)
			checkSameFloat(t, "min", minAgg.Query(), wantMin)
			mm := mmAgg.Query()
			checkSameFloat(t, "minmax.Lo", mm.Lo, wantMin)
			checkSameFloat(t, "minmax.Hi", mm.Hi, wantMax)

			// The deque oracle predates the sticky-NaN contract; compare
			// only on windows free of non-finite values.
			if finiteWindow(win) {
				checkSameFloat(t, "max-vs-deque", maxAgg.Query(), maxDq.Front())
				checkSameFloat(t, "min-vs-deque", minAgg.Query(), minDq.Front())
			}

			wantSum := naiveFold(win, SumCombine)
			gotSum := sumAgg.Query()
			switch {
			case math.IsNaN(wantSum):
				// A NaN input, or +Inf and −Inf meeting, poisons every
				// grouping the same way.
				if !math.IsNaN(gotSum) {
					t.Fatalf("w=%d sum = %v, want NaN", w, gotSum)
				}
			default:
				// Integer-valued windows (possibly with one signed
				// infinity) sum exactly under any association.
				checkSameFloat(t, "sum", gotSum, wantSum)
			}
		}
	})
}

// decodeFuzzValue maps 16 fuzzer bits onto the test lattice: mostly small
// integers (exact under float addition), with dedicated encodings for
// NaN, ±Inf and signed zero so the fuzzer reaches the edge semantics
// cheaply.
func decodeFuzzValue(bits uint16) float64 {
	switch bits >> 12 {
	case 0xF:
		return math.NaN()
	case 0xE:
		return math.Inf(1)
	case 0xD:
		return math.Inf(-1)
	case 0xC:
		return math.Copysign(0, -1)
	default:
		return float64(int(bits&0x0FFF) - 2048)
	}
}

// finiteWindow reports whether every value in the window is finite.
func finiteWindow(win []float64) bool {
	for _, v := range win {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// checkSameFloat asserts bit-level agreement, treating every NaN payload
// as equal.
func checkSameFloat(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.IsNaN(got) && math.IsNaN(want) {
		return
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s = %v (bits %x), want %v (bits %x)",
			what, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}
