package stardust

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"stardust/internal/gen"
)

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(Config{W: 8, Levels: 2}, 2); err == nil {
		t.Fatal("zero streams should fail")
	}
	if _, err := NewSharded(Config{
		Streams: 4, W: 16, Levels: 2, Transform: DWT, Mode: Batch, Normalization: NormZ,
	}, 2); err != nil {
		t.Fatalf("NormZ workloads should shard (cross-shard correlation merge): %v", err)
	}
	sm, err := NewSharded(Config{Streams: 3, W: 8, Levels: 2, Transform: Sum}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sm.NumShards() > 3 {
		t.Fatalf("shards = %d, want ≤ streams", sm.NumShards())
	}
	if sm.NumStreams() != 3 {
		t.Fatalf("streams = %d", sm.NumStreams())
	}
}

// TestShardedMatchesSingle: a sharded monitor must behave exactly like a
// single monitor for aggregate checks and pattern queries.
func TestShardedMatchesSingle(t *testing.T) {
	cfg := Config{
		Streams: 6, W: 16, Levels: 3, Transform: DWT, Mode: Batch,
		Coefficients: 4, Normalization: NormUnit, Rmax: 150, History: 512,
	}
	sm, err := NewSharded(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(251))
	data := gen.RandomWalks(rng, 6, 400)
	for i := 0; i < 400; i++ {
		for s := 0; s < 6; s++ {
			mustIngest(t, sm, s, data[s][i])
			mustIngest(t, single, s, data[s][i])
		}
	}
	for s := 0; s < 6; s++ {
		if sm.Now(s) != single.Now(s) {
			t.Fatalf("stream %d time mismatch", s)
		}
	}
	q := make([]float64, 48)
	copy(q, data[4][300:348])
	a, err := sm.FindPattern(q, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	b, err := single.FindPattern(q, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatalf("matches %d vs %d", len(a.Matches), len(b.Matches))
	}
	for i := range a.Matches {
		if a.Matches[i].Stream != b.Matches[i].Stream || a.Matches[i].End != b.Matches[i].End {
			t.Fatalf("match %d: %+v vs %+v", i, a.Matches[i], b.Matches[i])
		}
	}
	found := false
	for _, m := range a.Matches {
		if m.Stream == 4 && m.End == 347 {
			found = true
		}
	}
	if !found {
		t.Fatal("planted match missing (global stream id translation broken?)")
	}
}

// TestShardedAggregate: checks route to the right shard with global ids.
func TestShardedAggregate(t *testing.T) {
	sm, err := NewSharded(Config{Streams: 5, W: 4, Levels: 3, Transform: Sum}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		for s := 0; s < 5; s++ {
			mustIngest(t, sm, s, float64(s+1)) // stream s gets constant s+1
		}
	}
	for s := 0; s < 5; s++ {
		res, err := sm.CheckAggregate(s, 12, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		want := float64((s + 1) * 12)
		if res.Bound.Lo != want || res.Bound.Hi != want {
			t.Fatalf("stream %d bound [%g, %g], want %g", s, res.Bound.Lo, res.Bound.Hi, want)
		}
	}
	if err := sm.Ingest(9, 1); !errors.Is(err, ErrStreamRange) {
		t.Fatalf("out-of-range ingest err = %v, want ErrStreamRange", err)
	}
}

// TestShardedConcurrentIngest drives all shards from parallel writers; run
// with -race.
func TestShardedConcurrentIngest(t *testing.T) {
	sm, err := NewSharded(Config{Streams: 8, W: 8, Levels: 3, Transform: Sum}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(stream)))
			for i := 0; i < 1000; i++ {
				// Errorf, not the Fatalf helper: this runs off the test
				// goroutine.
				if err := sm.Ingest(stream, rng.Float64()); err != nil {
					t.Errorf("ingest stream %d: %v", stream, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	st := sm.Stats()
	if st.Streams != 8 {
		t.Fatalf("stats streams = %d", st.Streams)
	}
	if st.RawHistory == 0 || st.TotalBoxes() == 0 {
		t.Fatal("stats should reflect ingested data")
	}
	for s := 0; s < 8; s++ {
		if sm.Now(s) != 999 {
			t.Fatalf("stream %d time = %d", s, sm.Now(s))
		}
	}
}
