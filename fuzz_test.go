package stardust

import (
	"bytes"
	"testing"
)

// FuzzLoadSnapshot throws arbitrary bytes at the snapshot loader. Load
// guards recovery: a truncated, bit-flipped, or adversarial snapshot
// must come back as an error — never a panic or a monitor that explodes
// on first use. Seeds include real snapshots of both an Online and a
// Batch/DWT monitor so mutation starts from the production format.
func FuzzLoadSnapshot(f *testing.F) {
	seed := func(cfg Config, feed int) []byte {
		m, err := New(cfg)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < feed; i++ {
			for s := 0; s < cfg.Streams; s++ {
				if err := m.Ingest(s, float64(i*3+s)); err != nil {
					f.Fatal(err)
				}
			}
		}
		var buf bytes.Buffer
		if err := m.Snapshot(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	online := seed(Config{Streams: 2, W: 4, Levels: 3, Transform: Sum, Mode: Online, BoxCapacity: 2}, 40)
	batch := seed(Config{
		Streams: 2, W: 8, Levels: 3, Transform: DWT, Mode: Batch, Coefficients: 4, Normalization: NormZ,
	}, 64)
	f.Add(online)
	f.Add(batch)
	f.Add(online[:len(online)/2])
	f.Add([]byte{})
	f.Add([]byte("SDS2garbage"))

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Load(bytes.NewReader(b))
		if err != nil {
			return
		}
		// Whatever Load accepts must be a usable monitor: basic queries and
		// further ingestion may error but must not panic.
		for s := 0; s < m.NumStreams(); s++ {
			_ = m.Now(s)
			_, _ = m.AggregateBound(s, m.Summary().Config().W)
			_ = m.Ingest(s, 1)
		}
		_ = m.Stats()
	})
}
