package stardust_test

import (
	"fmt"

	"stardust"
)

// ExampleNew shows the minimal burst-monitoring setup: one stream, SUM
// features over windows 4 and 8, a verified alarm when a burst arrives.
func ExampleNew() {
	mon, err := stardust.New(stardust.Config{
		Streams:   1,
		W:         4,
		Levels:    2,
		Transform: stardust.Sum,
	})
	if err != nil {
		panic(err)
	}
	// Quiet values, then a burst.
	for _, v := range []float64{1, 1, 1, 1, 1, 1, 10, 10, 10, 10} {
		if err := mon.Ingest(0, v); err != nil {
			panic(err)
		}
	}
	res, err := mon.CheckAggregate(0, 8, 30) // last 8 values, threshold 30
	if err != nil {
		panic(err)
	}
	fmt.Printf("alarm=%v sum=%.0f\n", res.Alarm, res.Exact)
	// Output: alarm=true sum=44
}

// ExampleMonitor_AggregateBound shows the certified interval: with box
// capacity 1 the bound is exact; with a larger capacity it widens but
// always contains the true aggregate.
func ExampleMonitor_AggregateBound() {
	mon, _ := stardust.New(stardust.Config{
		Streams: 1, W: 4, Levels: 3, Transform: stardust.Sum,
	})
	for i := 1; i <= 16; i++ {
		mon.Ingest(0, float64(i))
	}
	// Window 12 = 4 + 8: composed from levels 0 and 1.
	bound, _ := mon.AggregateBound(0, 12)
	fmt.Printf("[%.0f, %.0f]\n", bound.Lo, bound.Hi)
	// Output: [126, 126]
}

// ExampleMonitor_FindPattern plants a shape in a stream and finds it with
// a variable-length query.
func ExampleMonitor_FindPattern() {
	mon, _ := stardust.New(stardust.Config{
		Streams: 1, W: 8, Levels: 3,
		Transform: stardust.DWT, Mode: stardust.Batch,
		Coefficients: 4, Normalization: stardust.NormUnit, Rmax: 10,
		History: 256,
	})
	ramp := func(i int) float64 { return float64(i%32) / 4 }
	for i := 0; i < 200; i++ {
		mon.Ingest(0, ramp(i))
	}
	// Query: one full ramp period, as last seen ending at t = 191.
	q := make([]float64, 32)
	for i := range q {
		q[i] = ramp(i)
	}
	res, _ := mon.FindPattern(q, 0.01)
	fmt.Printf("found=%v\n", len(res.Matches) > 0)
	// Output: found=true
}

// ExampleWatcher shows the continuous-query model: standing aggregate
// queries evaluated as values arrive, edge-triggered.
func ExampleWatcher() {
	mon, _ := stardust.New(stardust.Config{
		Streams: 1, W: 4, Levels: 2, Transform: stardust.Sum,
	})
	w := stardust.NewWatcher(mon)
	id, _ := w.WatchAggregate(0, 8, 100, true)

	values := []float64{1, 1, 1, 1, 1, 1, 1, 1, 40, 40, 40, 1, 1, 1, 1, 1, 1, 1, 1}
	for _, v := range values {
		events, _ := w.Push(0, v)
		for _, e := range events {
			fmt.Printf("watch %d: %v at t=%d (value %.0f)\n", id, e.Kind, e.Time, e.Value)
		}
	}
	// Output:
	// watch 1: aggregate-alarm at t=10 (value 125)
	// watch 1: aggregate-cleared at t=16 (value 86)
}
