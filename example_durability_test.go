package stardust_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"stardust"
)

// ExampleRecover shows the durable restart path: a write-ahead-logged
// monitor is shut down (or crashes), and Recover rebuilds it by loading
// the snapshot — absent here, so it starts fresh — and replaying the log
// over it.
func ExampleRecover() {
	dir, err := os.MkdirTemp("", "stardust-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	cfg := stardust.Config{
		Streams: 1, W: 4, Levels: 2, Transform: stardust.Sum,
		Durability: stardust.DurabilityConfig{
			Dir:   filepath.Join(dir, "wal"),
			Fsync: stardust.FsyncNone, // example brevity; production default is FsyncInterval
		},
	}
	snap := filepath.Join(dir, "state.snap")

	mon, err := stardust.New(cfg)
	if err != nil {
		panic(err)
	}
	if err := mon.IngestBatch(0, []float64{1, 1, 1, 1, 1, 1, 10, 10, 10, 10}); err != nil {
		panic(err)
	}
	if err := mon.Close(); err != nil {
		panic(err)
	}

	// Restart. Every sample comes back from the log; a crash instead of
	// the clean Close above would lose at most the unsynced tail.
	re, stats, err := stardust.Recover(cfg, snap)
	if err != nil {
		panic(err)
	}
	defer re.Close()
	fmt.Printf("replayed %d record(s), %d samples\n", stats.Records, stats.Samples)

	res, err := re.CheckAggregate(0, 8, 30)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alarm=%v sum=%.0f\n", res.Alarm, res.Exact)
	// Output:
	// replayed 1 record(s), 10 samples
	// alarm=true sum=44
}

// ExampleMonitor_Checkpoint shows log compaction: Checkpoint writes a
// snapshot and trims the segments it covers, so a later Recover replays
// only what arrived after the checkpoint.
func ExampleMonitor_Checkpoint() {
	dir, err := os.MkdirTemp("", "stardust-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	cfg := stardust.Config{
		Streams: 1, W: 4, Levels: 2, Transform: stardust.Sum,
		Durability: stardust.DurabilityConfig{
			Dir:          filepath.Join(dir, "wal"),
			Fsync:        stardust.FsyncNone,
			SegmentBytes: 64, // tiny segments so the trim is visible
		},
	}
	snap := filepath.Join(dir, "state.snap")

	mon, err := stardust.New(cfg)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 2; i++ {
		if err := mon.IngestBatch(0, []float64{1, 1, 1, 1, 1, 1, 1, 1}); err != nil {
			panic(err)
		}
	}
	if err := mon.Checkpoint(snap); err != nil {
		panic(err)
	}
	if err := mon.IngestBatch(0, []float64{20, 20}); err != nil {
		panic(err)
	}
	if err := mon.Close(); err != nil {
		panic(err)
	}

	re, stats, err := stardust.Recover(cfg, snap)
	if err != nil {
		panic(err)
	}
	defer re.Close()
	fmt.Printf("replay after checkpoint: %d record(s), %d samples\n", stats.Records, stats.Samples)

	res, err := re.CheckAggregate(0, 8, 30)
	if err != nil {
		panic(err)
	}
	fmt.Printf("t=%d alarm=%v sum=%.0f\n", re.Now(0), res.Alarm, res.Exact)
	// Output:
	// replay after checkpoint: 1 record(s), 2 samples
	// t=17 alarm=true sum=46
}

// ExampleMonitor_IngestBatch shows the amortized batch path and its
// skip-and-join error contract: admissible samples land, inadmissible
// ones are skipped and reported as typed errors.
func ExampleMonitor_IngestBatch() {
	mon, err := stardust.New(stardust.Config{
		Streams: 1, W: 4, Levels: 2, Transform: stardust.Sum,
	})
	if err != nil {
		panic(err)
	}
	err = mon.IngestBatch(0, []float64{3, math.NaN(), 5})
	fmt.Println("bad value rejected:", errors.Is(err, stardust.ErrBadValue))

	st := mon.Stats().Ingest
	fmt.Printf("accepted=%d rejected=%d t=%d\n", st.Accepted, st.Rejected, mon.Now(0))
	// Output:
	// bad value rejected: true
	// accepted=2 rejected=1 t=1
}
