#!/usr/bin/env sh
# CI gate: formatting, build, vet, the offline doc-comment gate (doclint),
# the documentation compile + flag-drift gate (docbuild, covering both the
# stardust-server and stardust-router flag sets), staticcheck, the full
# test suite under the race detector with shuffled execution order, a
# short-mode chaos-matrix run (randomized fault schedules across WAL +
# replication + failover), a wire soak smoke (concurrent binary TCP
# clients, snapshot checked byte-identical against an HTTP-ingested
# reference), a cluster e2e smoke (three stardust-server shards behind a
# stardust-router on ephemeral ports: mixed-transport ingest, every query
# class byte-compared against a single-process reference, then one shard
# kill -9ed to exercise the degraded partial-result path), a spec e2e
# smoke (two spec-loaded servers covering all three watch kinds across
# two tenants: attributed events, per-tenant metrics, typed quota
# rejections and an atomic live /specz reload), short fuzz
# smokes over the WAL frame parser, the client wire-frame parser, the
# snapshot loader, the fault-schedule parser, the consistent-hash ring
# lookup, the monitor-spec parser and the DABA sliding-aggregate parity
# oracle, a one-iteration benchmark smoke pass, and the
# benchmark-regression comparison against the committed BENCH_PR10.json
# baseline (deterministic counters plus the sampled append-latency p99
# ceiling — the worst-case O(1) tail-latency contract; throughput stays
# warn-only). Run from the repository root. Fails fast on the first error.
#
# Each stage prints its elapsed wall-clock seconds so slow stages are
# visible directly in CI logs.
set -eu

# Every stage's temp files live in one mktemp -d scratch directory, and one
# exit trap tears down both the scratch and any smoke processes still
# running — there is no other cleanup path, so a failing stage cannot leak
# either.
SCRATCH=$(mktemp -d)
SMOKE_PIDS=""
cleanup() {
    if [ -n "$SMOKE_PIDS" ]; then
        kill $SMOKE_PIDS 2>/dev/null || true
    fi
    rm -rf "$SCRATCH"
}
trap cleanup EXIT INT TERM

STAGE_START=0
stage() {
    STAGE_START=$(date +%s)
    echo "== $* =="
}
stage_done() {
    echo "-- done in $(( $(date +%s) - STAGE_START ))s"
}

stage "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
stage_done

stage "go build"
go build ./...
stage_done

stage "go vet"
go vet ./...
stage_done

# Hard documentation gates, both offline (no module fetches):
#  - doclint enforces the stylecheck doc rules (ST1000 package comments,
#    ST1020/ST1021/ST1022 doc comments on every exported identifier) over
#    the whole tree, so the gate holds even where staticcheck cannot be
#    downloaded.
#  - docbuild compiles every ```go block in the markdown docs and fails if
#    cmd/stardust-server or cmd/stardust-router registers a flag that
#    README.md/RUNBOOK.md do not document.
stage "doclint (doc-comment gate)"
go run ./internal/tools/doclint .
stage_done

stage "docbuild (markdown code blocks + flag reference)"
go run ./internal/tools/docbuild \
    -flagsrc cmd/stardust-server/main.go,cmd/stardust-router/main.go \
    -flagdoc README.md,RUNBOOK.md \
    README.md RUNBOOK.md DESIGN.md
stage_done

# staticcheck is pinned and fetched on demand; on machines without network
# access (or with GOFLAGS=-mod=vendor and no vendored copy) the fetch fails
# and the gate falls back to go vet alone, with a notice so the gap is
# visible. CI runners have network, so the check is enforced there.
STATICCHECK_VERSION=2025.1.1
stage "staticcheck ($STATICCHECK_VERSION)"
if go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./... 2>"$SCRATCH/staticcheck.err"; then
    stage_done
elif grep -qi 'dial tcp\|no such host\|connection refused\|i/o timeout\|proxyconnect' "$SCRATCH/staticcheck.err"; then
    echo "-- staticcheck unavailable offline (go vet already ran); skipping"
else
    cat "$SCRATCH/staticcheck.err" >&2
    exit 1
fi

# -shuffle=on randomizes test execution order within each package so
# accidental inter-test ordering dependencies surface in CI rather than on
# a developer's machine; the chosen seed prints at the top of the log for
# reproduction.
stage "go test -race -shuffle=on"
go test -race -shuffle=on ./...
stage_done

# The full -race suite above may satisfy the chaos matrix from the test
# cache; this stage re-runs it with -count=1 so every CI run demonstrably
# exercises the fault-injection path end to end.
stage "chaos matrix (short mode, -race)"
go test -race -short -count=1 -run '^TestChaosMatrix$' ./internal/replication
stage_done

# Like the chaos matrix: -count=1 so the soak demonstrably runs the
# concurrent wire clients every time rather than replaying a cached pass.
stage "wire soak smoke (concurrent TCP clients vs HTTP reference, -race)"
go test -race -count=1 -run '^TestWireSoak$' ./client
stage_done

# Cluster e2e smoke: real processes, not in-process test servers. Three
# full-width stardust-server shards and one stardust-router start on
# ephemeral ports; the clustersmoke driver ingests a seeded workload
# through the router over both transports (and into a fourth, single
# process reference server), byte-compares every query class between
# router and reference, then one shard dies by kill -9 and the degraded
# partial-result path must keep answering. Teardown rides the single exit
# trap above.
stage "cluster e2e smoke (3 shards + router vs single reference)"
go build -o "$SCRATCH/stardust-server" ./cmd/stardust-server
go build -o "$SCRATCH/stardust-router" ./cmd/stardust-router
go build -o "$SCRATCH/clustersmoke" ./internal/tools/clustersmoke

SMOKE_STREAMS=6
SMOKE_SEED=99
SMOKE_CFG="-streams $SMOKE_STREAMS -w 16 -levels 3 -transform dwt -mode batch -norm z -f 4 -history 512"

set -- $("$SCRATCH/clustersmoke" -phase ports -n 9)
A_HTTP=$1; A_TCP=$2; B_HTTP=$3; B_TCP=$4; C_HTTP=$5; C_TCP=$6
R_HTTP=$7; R_TCP=$8; REF_HTTP=$9

# shellcheck disable=SC2086 # SMOKE_CFG is a deliberate word list
"$SCRATCH/stardust-server" -addr "127.0.0.1:$A_HTTP" -tcp-addr "127.0.0.1:$A_TCP" $SMOKE_CFG \
    >"$SCRATCH/shard-a.log" 2>&1 &
SMOKE_PIDS="$SMOKE_PIDS $!"
# shellcheck disable=SC2086
"$SCRATCH/stardust-server" -addr "127.0.0.1:$B_HTTP" -tcp-addr "127.0.0.1:$B_TCP" $SMOKE_CFG \
    >"$SCRATCH/shard-b.log" 2>&1 &
SHARD_B_PID=$!
SMOKE_PIDS="$SMOKE_PIDS $SHARD_B_PID"
# shellcheck disable=SC2086
"$SCRATCH/stardust-server" -addr "127.0.0.1:$C_HTTP" -tcp-addr "127.0.0.1:$C_TCP" $SMOKE_CFG \
    >"$SCRATCH/shard-c.log" 2>&1 &
SMOKE_PIDS="$SMOKE_PIDS $!"
# shellcheck disable=SC2086
"$SCRATCH/stardust-server" -addr "127.0.0.1:$REF_HTTP" $SMOKE_CFG \
    >"$SCRATCH/reference.log" 2>&1 &
SMOKE_PIDS="$SMOKE_PIDS $!"

"$SCRATCH/stardust-router" -addr "127.0.0.1:$R_HTTP" -tcp-addr "127.0.0.1:$R_TCP" \
    -streams $SMOKE_STREAMS -partial degrade -retries 1 -retry-backoff 20ms -health-every 0 \
    -shards "shard-a=http://127.0.0.1:$A_HTTP;127.0.0.1:$A_TCP,shard-b=http://127.0.0.1:$B_HTTP;127.0.0.1:$B_TCP,shard-c=http://127.0.0.1:$C_HTTP;127.0.0.1:$C_TCP" \
    >"$SCRATCH/router.log" 2>&1 &
SMOKE_PIDS="$SMOKE_PIDS $!"

smoke_logs() {
    for log in shard-a shard-b shard-c reference router; do
        echo "--- $log.log ---" >&2
        cat "$SCRATCH/$log.log" >&2 || true
    done
}

"$SCRATCH/clustersmoke" -phase wait -timeout 30s \
    -urls "http://127.0.0.1:$A_HTTP,http://127.0.0.1:$B_HTTP,http://127.0.0.1:$C_HTTP,http://127.0.0.1:$REF_HTTP,http://127.0.0.1:$R_HTTP" \
    || { smoke_logs; exit 1; }
"$SCRATCH/clustersmoke" -phase ingest -streams $SMOKE_STREAMS -seed $SMOKE_SEED \
    -router-http "http://127.0.0.1:$R_HTTP" -router-tcp "127.0.0.1:$R_TCP" \
    -ref-http "http://127.0.0.1:$REF_HTTP" \
    || { smoke_logs; exit 1; }
"$SCRATCH/clustersmoke" -phase compare -streams $SMOKE_STREAMS -seed $SMOKE_SEED \
    -router-http "http://127.0.0.1:$R_HTTP" -ref-http "http://127.0.0.1:$REF_HTTP" \
    || { smoke_logs; exit 1; }

# Hard shard failure: no drain, no snapshot — the degraded path must hold.
kill -9 "$SHARD_B_PID"
"$SCRATCH/clustersmoke" -phase partial -streams $SMOKE_STREAMS -seed $SMOKE_SEED \
    -router-http "http://127.0.0.1:$R_HTTP" \
    || { smoke_logs; exit 1; }

kill $SMOKE_PIDS 2>/dev/null || true
SMOKE_PIDS=""
stage_done

# Spec e2e smoke: two spec-loaded stardust-server processes (one
# transform cannot host all three watch kinds — aggregate bounds need SUM
# extents, feature-space queries need DWT coefficients). The specsmoke
# driver writes the spec/tenant files, ci.sh boots a SUM server carrying
# aggregate watches across two tenants and a DWT server carrying pattern
# + correlation watches, and the run phase asserts boot-loaded specs,
# attributed events, per-tenant metrics, typed quota rejections, a live
# /specz reload and the atomicity of a rejected one.
stage "spec e2e smoke (two tenants + live /specz reload)"
go build -o "$SCRATCH/specsmoke" ./internal/tools/specsmoke
"$SCRATCH/specsmoke" -phase files -dir "$SCRATCH"

set -- $("$SCRATCH/clustersmoke" -phase ports -n 2)
SPEC_SUM=$1; SPEC_DWT=$2

"$SCRATCH/stardust-server" -addr "127.0.0.1:$SPEC_SUM" \
    -streams 4 -w 8 -levels 4 -transform sum \
    -spec-file "$SCRATCH/sum.spec" -tenants-file "$SCRATCH/tenants.json" \
    >"$SCRATCH/spec-sum.log" 2>&1 &
SMOKE_PIDS="$SMOKE_PIDS $!"
"$SCRATCH/stardust-server" -addr "127.0.0.1:$SPEC_DWT" \
    -streams 4 -w 8 -levels 3 -transform dwt -mode batch -norm z -f 4 -history 600 \
    -spec-file "$SCRATCH/dwt.spec" \
    >"$SCRATCH/spec-dwt.log" 2>&1 &
SMOKE_PIDS="$SMOKE_PIDS $!"

spec_logs() {
    for log in spec-sum spec-dwt; do
        echo "--- $log.log ---" >&2
        cat "$SCRATCH/$log.log" >&2 || true
    done
}

"$SCRATCH/clustersmoke" -phase wait -timeout 30s \
    -urls "http://127.0.0.1:$SPEC_SUM,http://127.0.0.1:$SPEC_DWT" \
    || { spec_logs; exit 1; }
"$SCRATCH/specsmoke" -phase run \
    -sum-url "http://127.0.0.1:$SPEC_SUM" -dwt-url "http://127.0.0.1:$SPEC_DWT" \
    || { spec_logs; exit 1; }

kill $SMOKE_PIDS 2>/dev/null || true
SMOKE_PIDS=""
stage_done

stage "fuzz smoke (5s per target)"
go test -run='^$' -fuzz=FuzzDecodeFrame -fuzztime=5s ./internal/wal
go test -run='^$' -fuzz=FuzzDecodeWireFrame -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz=FuzzReplaySegment -fuzztime=5s ./internal/wal
go test -run='^$' -fuzz=FuzzLoadSnapshot -fuzztime=5s .
go test -run='^$' -fuzz=FuzzParseSchedule -fuzztime=5s ./internal/fault
go test -run='^$' -fuzz=FuzzRingLookup -fuzztime=5s ./internal/cluster
go test -run='^$' -fuzz=FuzzParseSpec -fuzztime=5s ./internal/spec
go test -run='^$' -fuzz=FuzzDABAParity -fuzztime=5s ./internal/window
stage_done

stage "bench smoke (1 iteration)"
go test -bench=. -benchtime=1x -run '^$' ./...
stage_done

# The 2ms ceiling is the absolute tail-latency contract: sampled append
# p99 sits in single-digit microseconds on a developer laptop (see
# BENCH_PR10.json), so the ceiling holds ~250x headroom for slow CI
# runners while still catching any O(w)-sweep regression, which would
# push the tail orders of magnitude, not percent.
stage "bench regression gate (BENCH_PR10.json + p99 ceiling)"
go run ./cmd/stardust-bench -compare BENCH_PR10.json -p99-ceiling-ms 2
stage_done

echo "CI OK"
