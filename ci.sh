#!/usr/bin/env sh
# CI gate: formatting, build, vet, the full test suite under the race
# detector, and a one-iteration benchmark smoke pass. Run from the
# repository root. Fails fast on the first error.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration) =="
go test -bench=. -benchtime=1x -run '^$' ./...

echo "CI OK"
