#!/usr/bin/env sh
# CI gate: formatting, build, vet, the offline doc-comment gate (doclint),
# the documentation compile + flag-drift gate (docbuild), staticcheck, the
# full test suite under the race detector, a short-mode chaos-matrix run
# (randomized fault schedules across WAL + replication + failover), a wire
# soak smoke (concurrent binary TCP clients, snapshot checked byte-identical
# against an HTTP-ingested reference), short fuzz smokes over the WAL frame
# parser, the client wire-frame parser, the snapshot loader and the
# fault-schedule parser, a one-iteration benchmark smoke pass, and the
# benchmark-regression comparison against the committed BENCH_PR7.json
# baseline. Run from the repository root. Fails fast on the first error.
#
# Each stage prints its elapsed wall-clock seconds so slow stages are
# visible directly in CI logs.
set -eu

STAGE_START=0
stage() {
    STAGE_START=$(date +%s)
    echo "== $* =="
}
stage_done() {
    echo "-- done in $(( $(date +%s) - STAGE_START ))s"
}

stage "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
stage_done

stage "go build"
go build ./...
stage_done

stage "go vet"
go vet ./...
stage_done

# Hard documentation gates, both offline (no module fetches):
#  - doclint enforces the stylecheck doc rules (ST1000 package comments,
#    ST1020/ST1021/ST1022 doc comments on every exported identifier) over
#    the whole tree, so the gate holds even where staticcheck cannot be
#    downloaded.
#  - docbuild compiles every ```go block in the markdown docs and fails if
#    cmd/stardust-server registers a flag that README.md/RUNBOOK.md do not
#    document.
stage "doclint (doc-comment gate)"
go run ./internal/tools/doclint .
stage_done

stage "docbuild (markdown code blocks + flag reference)"
go run ./internal/tools/docbuild \
    -flagsrc cmd/stardust-server/main.go -flagdoc README.md,RUNBOOK.md \
    README.md RUNBOOK.md DESIGN.md
stage_done

# staticcheck is pinned and fetched on demand; on machines without network
# access (or with GOFLAGS=-mod=vendor and no vendored copy) the fetch fails
# and the gate falls back to go vet alone, with a notice so the gap is
# visible. CI runners have network, so the check is enforced there.
STATICCHECK_VERSION=2025.1.1
stage "staticcheck ($STATICCHECK_VERSION)"
if go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./... 2>/tmp/staticcheck.err; then
    stage_done
elif grep -qi 'dial tcp\|no such host\|connection refused\|i/o timeout\|proxyconnect' /tmp/staticcheck.err; then
    echo "-- staticcheck unavailable offline (go vet already ran); skipping"
else
    cat /tmp/staticcheck.err >&2
    exit 1
fi

stage "go test -race"
go test -race ./...
stage_done

# The full -race suite above may satisfy the chaos matrix from the test
# cache; this stage re-runs it with -count=1 so every CI run demonstrably
# exercises the fault-injection path end to end.
stage "chaos matrix (short mode, -race)"
go test -race -short -count=1 -run '^TestChaosMatrix$' ./internal/replication
stage_done

# Like the chaos matrix: -count=1 so the soak demonstrably runs the
# concurrent wire clients every time rather than replaying a cached pass.
stage "wire soak smoke (concurrent TCP clients vs HTTP reference, -race)"
go test -race -count=1 -run '^TestWireSoak$' ./client
stage_done

stage "fuzz smoke (5s per target)"
go test -run='^$' -fuzz=FuzzDecodeFrame -fuzztime=5s ./internal/wal
go test -run='^$' -fuzz=FuzzDecodeWireFrame -fuzztime=5s ./internal/wire
go test -run='^$' -fuzz=FuzzReplaySegment -fuzztime=5s ./internal/wal
go test -run='^$' -fuzz=FuzzLoadSnapshot -fuzztime=5s .
go test -run='^$' -fuzz=FuzzParseSchedule -fuzztime=5s ./internal/fault
stage_done

stage "bench smoke (1 iteration)"
go test -bench=. -benchtime=1x -run '^$' ./...
stage_done

stage "bench regression gate (BENCH_PR7.json)"
go run ./cmd/stardust-bench -compare BENCH_PR7.json
stage_done

echo "CI OK"
