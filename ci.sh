#!/usr/bin/env sh
# CI gate: build, vet, and run the full test suite under the race
# detector. Run from the repository root. Fails fast on the first error.
set -eu

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
