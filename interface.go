package stardust

import "io"

// Interface is the unified monitoring surface shared by every monitor
// flavor in the package: the plain Monitor, the lock-guarded SafeMonitor,
// the stream-partitioned ShardedMonitor and the standing-query SafeWatcher
// all satisfy it. It is the contract both servers bind against — the HTTP
// server in internal/server and the binary TCP tier in internal/transport
// — and the type to accept when a component only needs to feed and query a
// monitor without caring how it is synchronized or distributed.
//
// The surface has three parts: ingestion (Ingest, IngestAll, IngestBatch —
// the guarded, error-returning paths; the historical panicking Append
// wrappers are gone), the three query classes of the paper (aggregate,
// pattern/nearest-neighbor, correlation), and the stats surface (Stats for
// space accounting, Metrics for runtime observability, Snapshot for
// persistence).
type Interface interface {
	// Ingest admits one value for one stream through the resilience
	// guard, returning a typed error (ErrStreamRange, ErrBadValue,
	// ErrQuarantined) for samples that cannot be admitted.
	Ingest(stream int, v float64) error
	// IngestAll admits one synchronized arrival, vs[i] going to stream i.
	IngestAll(vs []float64) error
	// IngestBatch admits a run of consecutive values for one stream — the
	// amortized bulk path. Inadmissible samples are skipped and their
	// typed errors joined; admitted samples advance the clock in order,
	// exactly as a loop of Ingest calls would.
	IngestBatch(stream int, vs []float64) error

	// NumStreams returns the number of monitored streams.
	NumStreams() int
	// Now returns the discrete time of the stream's most recent value
	// (−1 before the first).
	Now(stream int) int64

	// CheckAggregate runs one aggregate monitoring check (Algorithm 2):
	// screen the summary bound, verify against raw history on overlap.
	CheckAggregate(stream, window int, threshold float64) (AggregateResult, error)
	// AggregateBound returns the certified interval enclosing the exact
	// windowed aggregate.
	AggregateBound(stream, window int) (Interval, error)
	// FindPattern answers a similarity range query: streams whose recent
	// window lies within distance r of q.
	FindPattern(q []float64, r float64) (PatternResult, error)
	// NearestPatterns returns the k streams nearest to the query pattern.
	NearestPatterns(q []float64, k int) ([]Match, error)
	// Correlations reports verified correlated stream pairs at a level.
	Correlations(level int, r float64) (CorrelationResult, error)
	// LaggedCorrelations screens correlated pairs across time lags.
	LaggedCorrelations(level int, r float64, maxLag int) ([]CorrPair, error)

	// Stats returns a space-usage snapshot of the summary.
	Stats() Stats
	// Metrics returns the observability snapshot: ingestion counters,
	// index node accesses, and per-query-class pruning power.
	Metrics() MetricsSnapshot
	// Snapshot serializes the monitor state for crash recovery.
	Snapshot(w io.Writer) error
}

// Compile-time checks: every monitor flavor satisfies the unified surface.
var (
	_ Interface = (*Monitor)(nil)
	_ Interface = (*SafeMonitor)(nil)
	_ Interface = (*ShardedMonitor)(nil)
	_ Interface = (*SafeWatcher)(nil)
)
