package stardust

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"stardust/internal/gen"
)

// newParityPair builds two identically configured DWT monitors — one serial
// (Workers: 1), one fanned out (Workers: 8) — and feeds both the same
// correlated-walk workload, so query results can be compared directly.
func newParityPair(t *testing.T, seed int64) (*Monitor, *Monitor) {
	t.Helper()
	cfg := Config{
		Streams: 8, W: 16, Levels: 4,
		Transform: DWT, Mode: Batch, Coefficients: 4,
		Normalization: NormZ, History: 600,
	}
	cfg.Parallel.Workers = 1
	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel.Workers = 8
	fanned, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	data := gen.CorrelatedWalks(rng, cfg.Streams, 500, 2, 0.1)
	for i := 0; i < 500; i++ {
		for s := 0; s < cfg.Streams; s++ {
			mustIngest(t, serial, s, data[s][i])
			mustIngest(t, fanned, s, data[s][i])
		}
	}
	return serial, fanned
}

// TestParallelParityCorrelations: Workers=1 and Workers=8 must produce
// byte-identical correlation rounds — same candidates in the same order,
// same verified pairs with the same distances.
func TestParallelParityCorrelations(t *testing.T) {
	serial, fanned := newParityPair(t, 731)
	for _, r := range []float64{0.2, 0.5, 1.0, 2.0} {
		for level := 0; level < 4; level++ {
			a, errA := serial.Correlations(level, r)
			b, errB := fanned.Correlations(level, r)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("level %d r %g: error mismatch %v vs %v", level, r, errA, errB)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("level %d r %g: serial %+v != parallel %+v", level, r, a, b)
			}
		}
	}
}

// TestParallelParityLagged: the lagged screen's per-worker dedup maps must
// partition exactly like the serial loop's shared map.
func TestParallelParityLagged(t *testing.T) {
	serial, fanned := newParityPair(t, 733)
	for _, lag := range []int{0, 16, 64} {
		for _, r := range []float64{0.5, 1.5} {
			a, errA := serial.LaggedCorrelations(3, r, lag)
			b, errB := fanned.LaggedCorrelations(3, r, lag)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("lag %d: error mismatch %v vs %v", lag, errA, errB)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("lag %d r %g: serial %+v != parallel %+v", lag, r, a, b)
			}
		}
	}
}

// TestParallelParityFindPattern covers both pattern algorithms (online and
// batch mode summaries) at several radii, including radii wide enough to
// produce many overlapping candidates.
func TestParallelParityFindPattern(t *testing.T) {
	for _, mode := range []Mode{Online, Batch} {
		rng := rand.New(rand.NewSource(737))
		data := gen.HostLoads(rng, 4, 600)
		cfg := Config{
			Streams: 4, W: 16, Levels: 4,
			Transform: DWT, Mode: mode, Coefficients: 4,
			Normalization: NormUnit, Rmax: 4, History: 600,
		}
		cfg.Parallel.Workers = 1
		serial, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Parallel.Workers = 8
		fanned, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 600; i++ {
			for s := 0; s < 4; s++ {
				mustIngest(t, serial, s, data[s][i])
				mustIngest(t, fanned, s, data[s][i])
			}
		}
		q := make([]float64, 80)
		copy(q, data[2][400:480])
		for _, r := range []float64{0.02, 0.1, 0.5, 2.0} {
			a, errA := serial.FindPattern(q, r)
			b, errB := fanned.FindPattern(q, r)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%v r %g: error mismatch %v vs %v", mode, r, errA, errB)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v r %g: serial %+v != parallel %+v", mode, r, a, b)
			}
		}
	}
}

// TestParallelParityNearestPatterns: the k-NN merge must preserve the
// serial candidate order so distance ties resolve identically.
func TestParallelParityNearestPatterns(t *testing.T) {
	serial, fanned := newParityPair(t, 739)
	q := make([]float64, 64)
	for i := range q {
		q[i] = math.Sin(float64(i) / 5)
	}
	for _, k := range []int{1, 5, 25} {
		a, errA := serial.NearestPatterns(q, k)
		b, errB := fanned.NearestPatterns(q, k)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("k %d: error mismatch %v vs %v", k, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k %d: serial %+v != parallel %+v", k, a, b)
		}
	}
}

// TestSetParallelism exercises the runtime knob and its NumCPU default.
func TestSetParallelism(t *testing.T) {
	m, err := New(Config{Streams: 2, W: 8, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Parallelism() < 1 {
		t.Fatalf("default parallelism %d < 1", m.Parallelism())
	}
	m.SetParallelism(3)
	if got := m.Parallelism(); got != 3 {
		t.Fatalf("Parallelism = %d after SetParallelism(3)", got)
	}
	m.SetParallelism(0) // 0 re-selects the NumCPU default
	if m.Parallelism() < 1 {
		t.Fatalf("parallelism %d < 1 after reset", m.Parallelism())
	}
}

// TestIngestBatchEquivalence: IngestBatch must be observationally identical
// to a loop of Ingest — same clocks, same query results, same joined
// errors for inadmissible samples.
func TestIngestBatchEquivalence(t *testing.T) {
	cfg := Config{
		Streams: 3, W: 16, Levels: 4,
		Transform: DWT, Mode: Batch, Coefficients: 4,
		Normalization: NormZ, History: 600,
	}
	one, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(741))
	data := gen.CorrelatedWalks(rng, 3, 512, 2, 0.1)
	// Poison a few samples so both paths exercise the skip-and-join
	// contract (default guard policy rejects non-finite values).
	for s := 0; s < 3; s++ {
		data[s][100] = math.NaN()
		data[s][300] = math.Inf(1)
	}
	for s := 0; s < 3; s++ {
		var loopErrs, batchErr error
		nerr := 0
		for _, v := range data[s] {
			if err := one.Ingest(s, v); err != nil {
				nerr++
				loopErrs = err
			}
		}
		// Split the stream into uneven chunks to cover batch boundaries.
		for lo := 0; lo < len(data[s]); {
			hi := lo + 1 + (lo % 97)
			if hi > len(data[s]) {
				hi = len(data[s])
			}
			if err := batch.IngestBatch(s, data[s][lo:hi]); err != nil {
				batchErr = err
			}
			lo = hi
		}
		if nerr != 2 || loopErrs == nil || batchErr == nil {
			t.Fatalf("stream %d: expected 2 rejected samples on both paths (loop %d/%v, batch %v)",
				s, nerr, loopErrs, batchErr)
		}
		if one.Now(s) != batch.Now(s) {
			t.Fatalf("stream %d: clock %d != %d", s, one.Now(s), batch.Now(s))
		}
	}
	ra, errA := one.Correlations(3, 0.8)
	rb, errB := batch.Correlations(3, 0.8)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("post-ingest correlations differ: %+v vs %+v", ra, rb)
	}
	sa, sb := one.Stats(), batch.Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("summary stats differ: %+v vs %+v", sa, sb)
	}
	// Batch metrics must account every sample once.
	ms := batch.Metrics()
	if ms.Ingest.Samples != 3*512 {
		t.Fatalf("batch monitor counted %d samples, want %d", ms.Ingest.Samples, 3*512)
	}
	if ms.Ingest.Batches == 0 {
		t.Fatal("batch monitor recorded no batches")
	}
}

// TestIngestBatchWrappers drives the bulk path through every Interface
// implementation so the contract holds regardless of synchronization
// wrapper.
func TestIngestBatchWrappers(t *testing.T) {
	cfg := Config{Streams: 4, W: 8, Levels: 3, Transform: Sum, BoxCapacity: 4}
	vs := make([]float64, 64)
	for i := range vs {
		vs[i] = float64(i % 7)
	}

	safe, err := NewSafe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	watcher := NewSafeWatcher(plain)

	for _, b := range []Interface{safe, sharded, watcher} {
		for s := 0; s < cfg.Streams; s++ {
			if err := b.IngestBatch(s, vs); err != nil {
				t.Fatalf("%T stream %d: %v", b, s, err)
			}
			if got := b.Now(s); got != int64(len(vs))-1 {
				t.Fatalf("%T stream %d: Now = %d", b, s, got)
			}
		}
		if err := b.IngestBatch(-1, vs); err == nil {
			t.Fatalf("%T: negative stream must fail", b)
		}
		if err := b.IngestBatch(0, nil); err != nil {
			t.Fatalf("%T: empty batch must be a no-op, got %v", b, err)
		}
	}

	// The watcher's bulk path must still fire standing queries.
	plain2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := NewSafeWatcher(plain2)
	if _, err := w.WatchAggregate(0, 8, 20, false); err != nil {
		t.Fatal(err)
	}
	var fired int
	w.SetEventSink(func(evs []Event) { fired += len(evs) })
	if err := w.IngestBatch(0, vs); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("standing aggregate query did not fire through IngestBatch")
	}
}
