// Package stardust is a unified framework for monitoring data streams in
// real time, reproducing Bulut & Singh (ICDE 2005). A Monitor summarizes
// any number of streams at multiple resolutions — sliding windows of size
// W, 2W, 4W, ... — computing features (SUM, MAX, MIN, SPREAD aggregates or
// wavelet coefficients) incrementally: each level's feature is derived from
// the level below in O(f) time, and consecutive features are grouped into
// minimum bounding rectangles indexed in per-level R*-trees. On top of the
// summary run three query classes with provable no-false-dismissal bounds:
//
//   - aggregate monitoring: "alert when the sum/spread over ANY window from
//     minutes to days crosses its threshold" (CheckAggregate);
//   - pattern monitoring: "find streams whose recent history matches this
//     shape", for query lengths unknown a priori (FindPattern);
//   - correlation monitoring: "report stream pairs whose current windows
//     are correlated above r" (Correlations).
//
// Every reported alarm, match or pair is first screened by the
// multi-resolution index and then verified against retained raw history, so
// results carry no false positives; the index tuning knobs (box capacity c,
// update rate T) trade screening precision for space and per-item time as
// analyzed in the paper.
package stardust

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"stardust/internal/aggregate"
	"stardust/internal/core"
	"stardust/internal/obs"
	"stardust/internal/resilience"
	"stardust/internal/wal"
	"stardust/internal/wavelet"
)

// Transform selects the feature transformation applied to stream windows.
type Transform = core.Transform

// Available transforms.
const (
	// Sum monitors moving sums (burst detection).
	Sum = core.TransformSum
	// Max monitors moving maxima.
	Max = core.TransformMax
	// Min monitors moving minima.
	Min = core.TransformMin
	// Spread monitors MAX−MIN (volatility detection).
	Spread = core.TransformSpread
	// DWT extracts leading wavelet coefficients (pattern and correlation
	// monitoring).
	DWT = core.TransformDWT
)

// Normalization selects window normalization for DWT features.
type Normalization = core.Normalization

// Available normalizations.
const (
	// NormNone indexes raw-signal coefficients.
	NormNone = core.NormNone
	// NormUnit maps windows to the unit hyper-sphere (pattern queries).
	NormUnit = core.NormUnit
	// NormZ z-normalizes windows (correlation queries); implies direct
	// batch computation.
	NormZ = core.NormZ
)

// Result and payload types of the three query classes.
type (
	// AggregateResult is one aggregate monitoring check: interval bound,
	// candidate flag, verified alarm and exact value.
	AggregateResult = core.AggregateResult
	// Interval is a closed interval bounding a scalar aggregate.
	Interval = aggregate.Interval
	// Match identifies a stream subsequence matched by a pattern query.
	Match = core.Match
	// PatternResult carries a pattern query's candidates and verified
	// matches.
	PatternResult = core.PatternResult
	// CorrPair is one correlated stream pair.
	CorrPair = core.CorrPair
	// CorrelationResult carries a correlation round's candidates and
	// verified pairs.
	CorrelationResult = core.CorrelationResult
	// Stats is a space-usage snapshot of the summary (Theorem 4.3's
	// quantity).
	Stats = core.Stats
	// LevelStats describes one resolution level in a Stats snapshot.
	LevelStats = core.LevelStats
)

// Ingestion resilience surface (see internal/resilience): Ingest and
// IngestAll route every sample through a Guard that converts malformed
// input into typed errors and optionally repairs it.
type (
	// GuardPolicy selects how non-finite samples are handled at ingestion.
	GuardPolicy = resilience.Policy
	// GuardConfig configures the ingestion guard (Config.BadValues).
	GuardConfig = resilience.Config
	// IngestStats reports the guard's accept/repair/reject counters and
	// quarantine state; surfaced via Stats().Ingest.
	IngestStats = resilience.IngestStats
)

// Available bad-value policies.
const (
	// RejectBad drops non-finite samples with ErrBadValue (default).
	RejectBad = resilience.Reject
	// ClampBad repairs infinities (and finite out-of-range values) to the
	// configured clamp bounds; NaN is still rejected.
	ClampBad = resilience.Clamp
	// LastValueBad gap-fills non-finite samples with the stream's most
	// recent admitted value.
	LastValueBad = resilience.LastValue
)

// Observability surface (see internal/obs): every monitor carries an
// always-on, low-overhead metrics set covering ingestion latency, R*-tree
// node accesses and per-query-class candidate/verified counts — the
// quantities the paper's cost model is stated in. Snapshot it with
// Monitor.Metrics(), or scrape the server's GET /metricsz endpoint.
type (
	// MetricsSnapshot is a point-in-time copy of a monitor's metrics.
	MetricsSnapshot = obs.Snapshot
	// IngestMetricsSnapshot is the ingestion section: guard counters plus
	// the sampled per-append latency distribution.
	IngestMetricsSnapshot = obs.IngestSnapshot
	// TreeMetricsSnapshot sums R*-tree node accesses, splits and
	// reinsertions over all resolution levels.
	TreeMetricsSnapshot = obs.TreeSnapshot
	// QueryMetricsSnapshot covers one query class: invocations, screened
	// candidates, verified results (PruningPower = Verified/Candidates, the
	// paper's precision) and query latency.
	QueryMetricsSnapshot = obs.QuerySnapshot
	// HistogramSnapshot is a bounded histogram copy with P50/P95/P99
	// estimators.
	HistogramSnapshot = obs.HistogramSnapshot
)

// Typed ingestion errors, matched with errors.Is.
var (
	// ErrBadValue marks an inadmissible sample the policy could not repair.
	ErrBadValue = resilience.ErrBadValue
	// ErrStreamRange marks a stream id outside [0, NumStreams).
	ErrStreamRange = resilience.ErrStreamRange
	// ErrQuarantined marks a sample dropped because its stream tripped the
	// consecutive-bad-value quarantine.
	ErrQuarantined = resilience.ErrQuarantined
)

// Mode selects the index maintenance algorithm of Section 4.
type Mode int

const (
	// Online computes a feature per arrival (T = 1) with box capacity c;
	// the choice for aggregate monitoring.
	Online Mode = iota
	// Batch computes a feature every W arrivals (T = W) with capacity 1;
	// the choice for pattern and correlation monitoring.
	Batch
	// SWAT uses the per-level rates T_j = 2^j of the authors' earlier
	// system.
	SWAT
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Online:
		return "online"
	case Batch:
		return "batch"
	case SWAT:
		return "swat"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParallelConfig configures the query-stage worker pool. The
// candidate-screening and verification stages of Correlations,
// LaggedCorrelations, FindPattern and NearestPatterns decompose into
// independent work items (per-stream index probes, per-candidate radius
// refinement and raw-history verification) that fan out across Workers
// goroutines; per-worker results merge deterministically, so parallel
// output is byte-identical to the serial path (see DESIGN.md, "Parallel
// execution").
type ParallelConfig struct {
	// Workers is the fan-out width. 0 selects runtime.NumCPU(); 1 selects
	// today's serial path.
	Workers int
}

// Config configures a Monitor. Zero values select documented defaults.
type Config struct {
	// Streams is the number of monitored streams (required).
	Streams int
	// W is the window size at the lowest resolution (required; a power of
	// two for DWT).
	W int
	// Levels is the number of resolutions; level j covers windows of size
	// W·2^j (required).
	Levels int
	// Transform selects the feature function (default Sum).
	Transform Transform
	// Mode selects online, batch, or SWAT maintenance (default Online).
	Mode Mode
	// BoxCapacity is c, the features grouped per MBR (default 1; > 1 is
	// only meaningful in Online mode).
	BoxCapacity int
	// Coefficients is f, the DWT coefficients kept per feature (DWT only;
	// default 2).
	Coefficients int
	// Normalization applies to DWT windows (default NormNone).
	Normalization Normalization
	// Rmax is the known value-range bound used by NormUnit.
	Rmax float64
	// History is the raw values retained per stream for verification
	// (default twice the largest window).
	History int
	// Daubechies selects the D4 filter instead of Haar (requires Batch
	// mode, where features are computed directly per window).
	Daubechies bool
	// OnlineI enables the exact-corner MBR wavelet transform (Appendix A
	// Online I) instead of the Θ(f) bound.
	OnlineI bool
	// DisableIndex skips the cross-stream indexes. Aggregate monitoring
	// never consults them, so aggregate-only deployments save all index
	// maintenance; pattern queries and lagged correlations require the
	// index and must leave this off.
	DisableIndex bool
	// BadValues configures the ingestion guard applied by Ingest,
	// IngestAll and Watcher.Push (and, for repairs, Append). The zero
	// value rejects non-finite samples and quarantines a stream after
	// resilience.DefaultQuarantineAfter consecutive bad values.
	BadValues GuardConfig
	// Parallel configures the query-stage worker pool. The zero value
	// selects runtime.NumCPU() workers; Workers: 1 forces serial
	// execution. Results are identical either way.
	Parallel ParallelConfig
	// Durability enables write-ahead logging of admitted samples, so a
	// crash between snapshots is recoverable with Recover. The zero value
	// (no Dir) disables the log.
	Durability DurabilityConfig
}

// Monitor is the Stardust summary over a set of streams. Monitors are not
// safe for concurrent use; wrap with a mutex or shard streams across
// monitors for parallel ingest.
type Monitor struct {
	sum     *core.Summary
	mode    Mode
	guard   *resilience.Guard
	metrics *obs.Metrics
	wal     *wal.Log
	walOne  [1]float64 // scratch run for single-sample WAL appends
}

// New constructs a Monitor. With Config.Durability set, a fresh
// write-ahead log is opened in its directory; a directory that already
// holds WAL records is refused (those records belong to a previous run —
// restart through Recover, which replays them, instead of silently
// orphaning them).
func New(cfg Config) (*Monitor, error) {
	m, err := newMonitor(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Durability.Dir != "" {
		log, err := openWAL(cfg.Durability, &m.metrics.WAL)
		if err != nil {
			return nil, fmt.Errorf("stardust: %v", err)
		}
		if last := log.LastLSN(); last > 0 {
			log.Close()
			return nil, fmt.Errorf("stardust: WAL directory %s already holds %d records; use Recover to replay them",
				cfg.Durability.Dir, last)
		}
		m.wal = log
	}
	return m, nil
}

// newMonitor builds the monitor without touching the WAL directory — the
// shared core of New and the Recover family.
func newMonitor(cfg Config) (*Monitor, error) {
	if cfg.Streams <= 0 {
		return nil, fmt.Errorf("stardust: Streams must be positive, got %d", cfg.Streams)
	}
	ccfg := core.Config{
		W:             cfg.W,
		Levels:        cfg.Levels,
		BoxCapacity:   cfg.BoxCapacity,
		Transform:     cfg.Transform,
		F:             cfg.Coefficients,
		Normalization: cfg.Normalization,
		Rmax:          cfg.Rmax,
		OnlineI:       cfg.OnlineI,
		HistoryN:      cfg.History,
		DisableIndex:  cfg.DisableIndex,
	}
	switch cfg.Mode {
	case Online:
		ccfg.Rate = core.RateOnline
	case Batch:
		ccfg.Rate = core.RateBatch(cfg.W)
		if ccfg.BoxCapacity == 0 {
			ccfg.BoxCapacity = 1
		}
		// Z-normalized Haar features at capacity 1 use the single-pass
		// composite merge (Θ(f) per level); everything else computes
		// batch features directly per window.
		composite := cfg.Transform == DWT && cfg.Normalization == NormZ &&
			!cfg.Daubechies && ccfg.BoxCapacity == 1
		ccfg.Direct = !composite
	case SWAT:
		ccfg.Rate = core.RateSWAT
	default:
		return nil, fmt.Errorf("stardust: unknown mode %v", cfg.Mode)
	}
	if cfg.Daubechies {
		if cfg.Mode != Batch {
			return nil, fmt.Errorf("stardust: the Daubechies filter requires Batch mode")
		}
		ccfg.Filter = wavelet.Daubechies4()
	}
	sum, err := core.NewSummary(ccfg, cfg.Streams)
	if err != nil {
		return nil, fmt.Errorf("stardust: %v", err)
	}
	metrics := obs.NewMetrics()
	sum.SetMetrics(metrics)
	sum.SetParallel(defaultWorkers(cfg.Parallel.Workers))
	return &Monitor{
		sum:     sum,
		mode:    cfg.Mode,
		guard:   resilience.NewGuard(cfg.BadValues, cfg.Streams),
		metrics: metrics,
	}, nil
}

// defaultWorkers resolves a ParallelConfig.Workers value: 0 (or negative)
// selects one worker per CPU.
func defaultWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// SetParallelism reconfigures the query worker pool at runtime (n ≤ 0
// selects runtime.NumCPU(), 1 the serial path). Queries already in flight
// finish on the pool width they started with; restored monitors (Load)
// default to NumCPU like New.
func (m *Monitor) SetParallelism(n int) { m.sum.SetParallel(defaultWorkers(n)) }

// Parallelism returns the configured query worker count.
func (m *Monitor) Parallelism() int { return m.sum.Workers() }

// Ingest ingests one value through the resilience guard. Inadmissible
// samples return a typed error — ErrStreamRange, ErrBadValue, or
// ErrQuarantined — instead of panicking, and repairable ones (per the
// configured bad-value policy) are repaired before appending. On error the
// stream's clock does not advance.
func (m *Monitor) Ingest(stream int, v float64) error {
	n := m.metrics.Ingest.Samples.Inc()
	admitted, err := m.guard.Admit(stream, v)
	if err != nil {
		return err
	}
	// Write-ahead ordering: the admitted sample reaches the log before the
	// summary, so every state transition a crash can lose is replayable.
	if m.wal != nil {
		m.walOne[0] = admitted
		if err := m.walAppend(stream, m.sum.Now(stream)+1, m.walOne[:]); err != nil {
			return err
		}
	}
	// Per-append latency is sampled (one append in obs.SampleEvery) so the
	// two clock reads stay off the common path.
	if obs.Sampled(n) {
		start := time.Now()
		m.sum.Append(stream, admitted)
		m.metrics.Ingest.AppendNanos.Observe(float64(time.Since(start)))
		return nil
	}
	m.sum.Append(stream, admitted)
	return nil
}

// IngestBatch ingests a run of consecutive values for one stream — the
// amortized fast path for bulk and replay ingestion. It is equivalent to
// calling Ingest once per value (inadmissible samples are skipped with
// their typed errors joined into the return value; admitted samples
// advance the clock in order) but hoists the per-sample overheads:
// metrics accounting, the latency clock, the stream lookup and the
// eviction pass run once per batch, and the summary appends the whole
// admitted run without re-entering the guard path. The R*-tree is still
// updated once per completed feature — never per value.
func (m *Monitor) IngestBatch(stream int, vs []float64) error {
	if len(vs) == 0 {
		return nil
	}
	n := m.metrics.Ingest.Samples.Add(int64(len(vs)))
	m.metrics.Ingest.Batches.Inc()
	m.metrics.Ingest.BatchSize.Observe(float64(len(vs)))
	var errs []error
	admitted := make([]float64, 0, len(vs))
	for _, v := range vs {
		a, err := m.guard.Admit(stream, v)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		admitted = append(admitted, a)
	}
	if len(admitted) > 0 {
		// The whole admitted run is one WAL record: one frame, one write
		// syscall, and (under FsyncAlways) one fsync for the batch.
		if m.wal != nil {
			if err := m.walAppend(stream, m.sum.Now(stream)+1, admitted); err != nil {
				errs = append(errs, err)
				return errors.Join(errs...)
			}
		}
		// Amortized latency sampling: when the batch crosses a sampling
		// point, the whole append run is timed once and recorded as its
		// per-sample average.
		if obs.SampledBatch(n, int64(len(vs))) {
			start := time.Now()
			m.sum.AppendBatch(stream, admitted)
			m.metrics.Ingest.AppendNanos.Observe(float64(time.Since(start)) / float64(len(admitted)))
		} else {
			m.sum.AppendBatch(stream, admitted)
		}
	}
	return errors.Join(errs...)
}

// IngestAll ingests one synchronized arrival across all streams through the
// guard. Streams whose values are rejected skip this tick (their clocks
// fall behind the others); the errors are joined and returned after every
// stream has been attempted. A length mismatch fails up front with
// ErrStreamRange.
func (m *Monitor) IngestAll(vs []float64) error {
	if len(vs) != m.NumStreams() {
		return fmt.Errorf("stardust: %w: IngestAll got %d values for %d streams",
			ErrStreamRange, len(vs), m.NumStreams())
	}
	var errs []error
	for i, v := range vs {
		if err := m.Ingest(i, v); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// AddStream registers a new empty stream and returns its id.
func (m *Monitor) AddStream() int {
	id := m.sum.AddStream()
	m.guard.Grow()
	return id
}

// SetBadValuePolicy replaces the ingestion guard, resetting its counters
// and per-stream repair state. Monitors restored with Load start with the
// default (Reject) guard; call this to re-apply a deployment's policy.
func (m *Monitor) SetBadValuePolicy(cfg GuardConfig) {
	m.guard = resilience.NewGuard(cfg, m.sum.NumStreams())
}

// Quarantined reports whether the stream is currently quarantined by the
// ingestion guard.
func (m *Monitor) Quarantined(stream int) bool { return m.guard.Quarantined(stream) }

// Now returns the discrete time of the stream's most recent value (−1
// before any value).
func (m *Monitor) Now(stream int) int64 { return m.sum.Now(stream) }

// NumStreams returns the number of monitored streams.
func (m *Monitor) NumStreams() int { return m.sum.NumStreams() }

// CheckAggregate runs one aggregate monitoring check (Algorithm 2) over the
// most recent window of the given size: the multi-resolution bound is
// composed from sub-window MBRs and, when its upper end crosses the
// threshold, verified against raw history. The window must be a multiple
// of W decomposable within the configured levels.
func (m *Monitor) CheckAggregate(stream, window int, threshold float64) (AggregateResult, error) {
	return m.checkAggregateVerified(stream, window, threshold, nil)
}

// checkAggregateVerified is CheckAggregate with a caller-supplied exact
// verifier (see core.Summary.AggregateQueryVerified) — the watcher's
// worst-case O(1) verification path. Metrics accounting is identical to
// CheckAggregate: candidates and verified alarms count the same whichever
// verifier answered.
func (m *Monitor) checkAggregateVerified(stream, window int, threshold float64, exact func() (float64, bool)) (AggregateResult, error) {
	start := time.Now()
	res, err := m.sum.AggregateQueryVerified(stream, window, threshold, exact)
	cand, verified := 0, 0
	if res.Candidate {
		cand = 1
	}
	if res.Alarm {
		verified = 1
	}
	m.metrics.Aggregate.ObserveQuery(cand, verified, int64(time.Since(start)))
	return res, err
}

// AggregateBound returns the interval guaranteed to contain the exact
// aggregate of the most recent window of the given size.
func (m *Monitor) AggregateBound(stream, window int) (Interval, error) {
	start := time.Now()
	iv, err := m.sum.AggregateBound(stream, window)
	m.metrics.Aggregate.ObserveQuery(0, 0, int64(time.Since(start)))
	return iv, err
}

// FindPattern answers a variable-length similarity query: all stream
// subsequences within distance r of the query under the configured
// normalization. The monitor's mode selects the paper's Algorithm 3
// (Online/SWAT) or Algorithm 4 (Batch).
func (m *Monitor) FindPattern(q []float64, r float64) (PatternResult, error) {
	start := time.Now()
	var res PatternResult
	var err error
	if m.mode == Batch {
		res, err = m.sum.PatternQueryBatch(q, r)
	} else {
		res, err = m.sum.PatternQueryOnline(q, r)
	}
	// Relevant (candidates whose verification succeeded) is the precision
	// numerator, so PruningPower matches PatternResult.Precision.
	m.metrics.Pattern.ObserveQuery(len(res.Candidates), res.Relevant, int64(time.Since(start)))
	return res, err
}

// Correlations reports stream pairs whose current windows at the given
// resolution level are within z-norm distance r (correlation ≥ 1 − r²/2),
// screened by the level index and verified on raw history.
func (m *Monitor) Correlations(level int, r float64) (CorrelationResult, error) {
	start := time.Now()
	res, err := m.sum.CorrelationQuery(level, r)
	m.metrics.Correlation.ObserveQuery(len(res.Candidates), len(res.Pairs), int64(time.Since(start)))
	return res, err
}

// NearestPatterns returns the k stream subsequences most similar to the
// query (smallest normalized distance), verified on raw history and sorted
// by increasing distance. Requires a Batch monitor.
func (m *Monitor) NearestPatterns(q []float64, k int) ([]Match, error) {
	start := time.Now()
	ms, err := m.sum.NearestPatterns(q, k)
	// k-NN has no screened/verified split; it contributes invocations and
	// latency to the pattern class without skewing its pruning power.
	m.metrics.Pattern.ObserveQuery(0, 0, int64(time.Since(start)))
	return ms, err
}

// LaggedCorrelations reports screened stream pairs whose current window on
// one side resembles a window of the other side ending up to maxLag time
// steps earlier (TimeA − TimeB is the lag). Pairs are screened only; pass
// them to Summary().VerifyPairs for exact confirmation. Requires the
// summary to retain indexed features across the lag range (IndexHorizon).
func (m *Monitor) LaggedCorrelations(level int, r float64, maxLag int) ([]CorrPair, error) {
	start := time.Now()
	pairs, err := m.sum.CorrelationScreenLagged(level, r, maxLag)
	// Screen-only: no verification runs here, so only invocations and
	// latency are recorded (candidates would skew pruning power).
	m.metrics.Correlation.ObserveQuery(0, 0, int64(time.Since(start)))
	return pairs, err
}

// LinearScanMatches is the brute-force ground truth for FindPattern,
// scanning every retained alignment of every stream.
func (m *Monitor) LinearScanMatches(q []float64, r float64) []Match {
	return m.sum.ScanPatternMatches(q, r)
}

// Stats returns a space-usage snapshot: per-level box counts, index sizes,
// retained raw history, and the ingestion guard's counters.
func (m *Monitor) Stats() Stats {
	st := m.sum.Stats()
	st.Ingest = m.guard.Stats()
	return st
}

// Metrics returns a point-in-time observability snapshot: ingestion
// counters and sampled append latency, R*-tree node accesses, splits and
// reinsertions summed over all levels, and per-query-class candidate vs.
// verified counts with latency percentiles. Counters are monotone between
// snapshots; the snapshot is per-counter consistent, not globally atomic.
func (m *Monitor) Metrics() MetricsSnapshot {
	snap := m.metrics.Snapshot()
	gs := m.guard.Stats()
	snap.Ingest.Accepted = gs.Accepted
	snap.Ingest.Repaired = gs.Repaired
	snap.Ingest.Rejected = gs.Rejected
	snap.Ingest.QuarantinedStreams = int64(gs.QuarantinedStreams)
	snap.Ingest.QuarantineTrips = gs.QuarantineTrips
	return snap
}

// Summary exposes the underlying core summary for advanced use (per-level
// index inspection, exact feature recomputation).
func (m *Monitor) Summary() *core.Summary { return m.sum }
