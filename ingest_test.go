package stardust

import (
	"errors"
	"math"
	"testing"
)

func newSumMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	if cfg.Streams == 0 {
		cfg.Streams = 2
	}
	if cfg.W == 0 {
		cfg.W, cfg.Levels = 8, 3
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIngestRejectPolicy(t *testing.T) {
	m := newSumMonitor(t, Config{})
	if err := m.Ingest(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest(0, math.NaN()); !errors.Is(err, ErrBadValue) {
		t.Fatalf("NaN err = %v, want ErrBadValue", err)
	}
	if err := m.Ingest(0, math.Inf(1)); !errors.Is(err, ErrBadValue) {
		t.Fatalf("+Inf err = %v, want ErrBadValue", err)
	}
	// Rejected samples do not advance the stream clock.
	if m.Now(0) != 0 {
		t.Fatalf("clock advanced to %d on rejected samples", m.Now(0))
	}
	if err := m.Ingest(5, 1); !errors.Is(err, ErrStreamRange) {
		t.Fatalf("out-of-range err = %v, want ErrStreamRange", err)
	}
	st := m.Stats()
	if st.Ingest.Accepted != 1 || st.Ingest.Rejected != 2 {
		t.Fatalf("ingest stats = %+v", st.Ingest)
	}
}

func TestIngestClampPolicy(t *testing.T) {
	m := newSumMonitor(t, Config{
		BadValues: GuardConfig{Policy: ClampBad, ClampMin: 0, ClampMax: 100},
	})
	for _, v := range []float64{50, math.Inf(1), math.Inf(-1), 300} {
		if err := m.Ingest(0, v); err != nil {
			t.Fatalf("Ingest(%v): %v", v, err)
		}
	}
	if m.Now(0) != 3 {
		t.Fatalf("clock = %d, want 3", m.Now(0))
	}
	// 50 + 100 + 0 + 100 over the last 4 values once window fills; verify
	// through the exact aggregate after filling the window.
	for i := 0; i < 4; i++ {
		if err := m.Ingest(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	exact, err := m.Summary().ExactAggregate(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 250 {
		t.Fatalf("clamped window sum = %v, want 250", exact)
	}
	if st := m.Stats(); st.Ingest.Repaired != 3 {
		t.Fatalf("repaired = %d, want 3", st.Ingest.Repaired)
	}
}

func TestIngestLastValuePolicy(t *testing.T) {
	m := newSumMonitor(t, Config{BadValues: GuardConfig{Policy: LastValueBad}})
	if err := m.Ingest(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest(0, math.NaN()); err != nil {
		t.Fatalf("gap-fill failed: %v", err)
	}
	if m.Now(0) != 1 {
		t.Fatalf("clock = %d, want 1 (gap-filled)", m.Now(0))
	}
	// The other stream has no history: reject.
	if err := m.Ingest(1, math.NaN()); !errors.Is(err, ErrBadValue) {
		t.Fatalf("no-history gap-fill err = %v", err)
	}
}

func TestIngestQuarantine(t *testing.T) {
	m := newSumMonitor(t, Config{
		BadValues: GuardConfig{Policy: LastValueBad, QuarantineAfter: 3},
	})
	if err := m.Ingest(0, 1); err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 5; i++ {
		lastErr = m.Ingest(0, math.NaN())
	}
	if !errors.Is(lastErr, ErrQuarantined) {
		t.Fatalf("err after bad run = %v, want ErrQuarantined", lastErr)
	}
	if !m.Quarantined(0) || m.Quarantined(1) {
		t.Fatal("quarantine flags wrong")
	}
	st := m.Stats()
	if st.Ingest.QuarantinedStreams != 1 || st.Ingest.QuarantineTrips != 1 {
		t.Fatalf("stats = %+v", st.Ingest)
	}
	// Recovery on the next finite value.
	if err := m.Ingest(0, 2); err != nil {
		t.Fatal(err)
	}
	if m.Quarantined(0) {
		t.Fatal("quarantine survived a finite value")
	}
}

func TestIngestAllPartialFailure(t *testing.T) {
	m := newSumMonitor(t, Config{Streams: 3})
	if err := m.IngestAll([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// One bad stream: the other two still advance, the error names the
	// failure.
	err := m.IngestAll([]float64{4, math.NaN(), 6})
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("err = %v, want ErrBadValue", err)
	}
	if m.Now(0) != 1 || m.Now(1) != 0 || m.Now(2) != 1 {
		t.Fatalf("clocks = %d,%d,%d", m.Now(0), m.Now(1), m.Now(2))
	}
	// Length mismatch is a range error.
	if err := m.IngestAll([]float64{1}); !errors.Is(err, ErrStreamRange) {
		t.Fatalf("mismatch err = %v, want ErrStreamRange", err)
	}
}

func TestAddStreamGrowsGuard(t *testing.T) {
	m := newSumMonitor(t, Config{})
	id := m.AddStream()
	if err := m.Ingest(id, 1); err != nil {
		t.Fatalf("new stream rejected: %v", err)
	}
}

func TestSafeMonitorIngest(t *testing.T) {
	sm, err := NewSafe(Config{Streams: 2, W: 8, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Ingest(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sm.Ingest(0, math.NaN()); !errors.Is(err, ErrBadValue) {
		t.Fatalf("err = %v", err)
	}
	if err := sm.IngestAll([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if st := sm.Stats(); st.Ingest.Accepted != 3 || st.Ingest.Rejected != 1 {
		t.Fatalf("stats = %+v", st.Ingest)
	}
}

func TestShardedIngestAndRangeErrors(t *testing.T) {
	sm, err := NewSharded(Config{Streams: 10, W: 8, Levels: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		if err := sm.Ingest(s, float64(s)); err != nil {
			t.Fatalf("stream %d: %v", s, err)
		}
	}
	// Out-of-range ids are typed errors, not process-killing panics.
	for _, s := range []int{-1, 10, 999} {
		if err := sm.Ingest(s, 1); !errors.Is(err, ErrStreamRange) {
			t.Fatalf("Ingest(%d) err = %v, want ErrStreamRange", s, err)
		}
	}
	if _, err := sm.CheckAggregate(99, 8, 1); !errors.Is(err, ErrStreamRange) {
		t.Fatalf("CheckAggregate range err = %v", err)
	}
	if err := sm.Ingest(3, math.NaN()); !errors.Is(err, ErrBadValue) {
		t.Fatalf("sharded bad value err = %v", err)
	}
	if err := sm.IngestAll(make([]float64, 9)); !errors.Is(err, ErrStreamRange) {
		t.Fatalf("IngestAll mismatch err = %v", err)
	}
}

func TestWatcherPushRejectsBadValues(t *testing.T) {
	m := newSumMonitor(t, Config{})
	w := NewWatcher(m)
	if _, err := w.WatchAggregate(0, 8, 100, true); err != nil {
		t.Fatal(err)
	}
	events, err := w.Push(0, math.NaN())
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("Push(NaN) err = %v, want ErrBadValue", err)
	}
	if len(events) != 0 {
		t.Fatalf("rejected push produced %d events", len(events))
	}
	if m.Now(0) != -1 {
		t.Fatalf("rejected push advanced clock to %d", m.Now(0))
	}
	if _, err := w.Push(0, 1); err != nil {
		t.Fatal(err)
	}
}
