package stardust

import (
	"math/rand"
	"testing"

	"stardust/internal/gen"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{W: 8, Levels: 2}); err == nil {
		t.Fatal("missing Streams should fail")
	}
	if _, err := New(Config{Streams: 1, W: 0, Levels: 2}); err == nil {
		t.Fatal("bad W should fail")
	}
	if _, err := New(Config{Streams: 1, W: 8, Levels: 2, Mode: Mode(99)}); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if _, err := New(Config{Streams: 1, W: 8, Levels: 2, Transform: DWT, Daubechies: true}); err == nil {
		t.Fatal("Daubechies outside Batch mode should fail")
	}
	m, err := New(Config{Streams: 3, W: 8, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStreams() != 3 {
		t.Fatalf("streams = %d", m.NumStreams())
	}
}

func TestModeStrings(t *testing.T) {
	for mode, want := range map[Mode]string{Online: "online", Batch: "batch", SWAT: "swat"} {
		if mode.String() != want {
			t.Errorf("%d prints %q", int(mode), mode.String())
		}
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode should still print")
	}
}

// TestBurstMonitoringEndToEnd drives the public API through the gamma-ray
// scenario: multi-timescale SUM monitoring with verified alarms.
func TestBurstMonitoringEndToEnd(t *testing.T) {
	m, err := New(Config{
		Streams: 1, W: 10, Levels: 5,
		Transform: Sum, Mode: Online, BoxCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(141))
	data := gen.Burst(rng, 2000, 5, 40)
	alarms := 0
	for i, v := range data {
		mustIngest(t, m, 0, v)
		if i < 80 {
			continue
		}
		res, err := m.CheckAggregate(0, 80, 700)
		if err != nil {
			t.Fatal(err)
		}
		if res.Alarm {
			alarms++
			if res.Exact < 700 {
				t.Fatalf("alarm with exact %g below threshold", res.Exact)
			}
		}
		// The bound must always contain the exact value.
		exact, err := m.Summary().ExactAggregate(0, 80)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Bound.Contains(exact) {
			t.Fatalf("t=%d: exact %g outside bound [%g, %g]", i, exact, res.Bound.Lo, res.Bound.Hi)
		}
	}
	if alarms == 0 {
		t.Fatal("burst workload should raise alarms")
	}
	if m.Now(0) != int64(len(data))-1 {
		t.Fatalf("Now = %d", m.Now(0))
	}
}

// TestPatternSearchEndToEnd drives FindPattern in both modes.
func TestPatternSearchEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	data := gen.HostLoads(rng, 3, 600)
	for _, mode := range []Mode{Online, Batch} {
		m, err := New(Config{
			Streams: 3, W: 16, Levels: 4,
			Transform: DWT, Mode: mode, Coefficients: 4,
			Normalization: NormUnit, Rmax: 4, History: 600,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 600; i++ {
			for s := 0; s < 3; s++ {
				mustIngest(t, m, s, data[s][i])
			}
		}
		q := make([]float64, 80)
		copy(q, data[2][400:480])
		res, err := m.FindPattern(q, 0.02)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		found := false
		for _, match := range res.Matches {
			if match.Stream == 2 && match.End == 479 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v: planted pattern not found", mode)
		}
		// Matches must agree with the linear scan.
		scan := m.LinearScanMatches(q, 0.02)
		if len(scan) != len(res.Matches) {
			t.Fatalf("%v: %d matches vs %d scan", mode, len(res.Matches), len(scan))
		}
	}
}

// TestCorrelationEndToEnd drives Correlations over grouped streams.
func TestCorrelationEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	const M = 8
	m, err := New(Config{
		Streams: M, W: 16, Levels: 4,
		Transform: DWT, Mode: Batch, Coefficients: 4,
		Normalization: NormZ,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := gen.CorrelatedWalks(rng, M, 400, 2, 0.1)
	vs := make([]float64, M)
	for i := 0; i < 400; i++ {
		for s := 0; s < M; s++ {
			vs[s] = data[s][i]
		}
		mustIngestAll(t, m, vs)
	}
	res, err := m.Correlations(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Grouped neighbours (0,1), (2,3), ... must be among verified pairs.
	got := make(map[[2]int]bool)
	for _, p := range res.Pairs {
		got[[2]int{p.A, p.B}] = true
		if p.Correlation < 1-0.5*0.5/2 {
			t.Fatalf("pair (%d,%d) correlation %g below threshold", p.A, p.B, p.Correlation)
		}
	}
	for g := 0; g < M; g += 2 {
		if !got[[2]int{g, g + 1}] {
			t.Fatalf("grouped pair (%d,%d) not detected; pairs = %v", g, g+1, res.Pairs)
		}
	}
}

// TestSWATMode exercises the SWAT rate schedule through the public API.
func TestSWATMode(t *testing.T) {
	m, err := New(Config{Streams: 1, W: 4, Levels: 3, Transform: Sum, Mode: SWAT})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mustIngest(t, m, 0, 1)
	}
	// Level-2 features (window 16, T=4) exist at t ≡ 3 mod 4.
	if _, ok := m.Summary().FeatureBoxAt(0, 2, 99); !ok {
		t.Fatal("SWAT level-2 feature missing at aligned time")
	}
	if _, ok := m.Summary().FeatureBoxAt(0, 2, 98); ok {
		t.Fatal("SWAT level-2 feature present off schedule")
	}
}

// TestDaubechiesBatch exercises the non-Haar filter path end to end.
func TestDaubechiesBatch(t *testing.T) {
	m, err := New(Config{
		Streams: 1, W: 16, Levels: 2,
		Transform: DWT, Mode: Batch, Coefficients: 4, Daubechies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(144))
	for i := 0; i < 128; i++ {
		mustIngest(t, m, 0, rng.Float64())
	}
	if _, ok := m.Summary().FeatureBoxAt(0, 1, 127); !ok {
		t.Fatal("D4 batch feature missing")
	}
}

func TestAggregateBoundAccessor(t *testing.T) {
	m, err := New(Config{Streams: 1, W: 4, Levels: 3, Transform: Spread})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		mustIngest(t, m, 0, float64(i%7))
	}
	iv, err := m.AggregateBound(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.Hi {
		t.Fatalf("inverted interval %v", iv)
	}
}
