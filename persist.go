package stardust

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"stardust/internal/core"
	"stardust/internal/obs"
	"stardust/internal/resilience"
)

// Snapshot container format. Version 2 (written) frames the payload with a
// CRC32 checksum and an explicit length so corruption — truncation from a
// crash mid-write, bit flips at rest — fails Load with a clean error
// instead of a garbled monitor or a decoder panic:
//
//	[4]  magic "SDS2"
//	[4]  CRC32 (IEEE) of the payload
//	[8]  payload length (little-endian uint64)
//	[N]  payload: int32 mode + gob-encoded core summary
//
// Version 1 ("SDS1": int32 mode + gob payload, unframed) is still loaded
// for snapshots written by earlier releases.
var (
	snapshotMagic   = [4]byte{'S', 'D', 'S', '2'}
	snapshotMagicV1 = [4]byte{'S', 'D', 'S', '1'}
)

// ErrSnapshotCorrupt marks a snapshot that failed checksum or framing
// validation. Match with errors.Is; file loads fall back to the .bak copy
// on this error.
var ErrSnapshotCorrupt = errors.New("snapshot corrupt")

// Snapshot serializes the monitor's full state — configuration, raw
// histories and every level's feature boxes — so a monitoring process can
// restart without losing its summaries. The per-level indexes are rebuilt
// on load. The payload is framed with a CRC32 checksum (format SDS2).
func (m *Monitor) Snapshot(w io.Writer) error {
	var payload bytes.Buffer
	if err := binary.Write(&payload, binary.LittleEndian, int32(m.mode)); err != nil {
		return fmt.Errorf("stardust: encoding snapshot: %v", err)
	}
	if err := m.sum.Snapshot(&payload); err != nil {
		return err
	}
	var header [16]byte
	copy(header[:4], snapshotMagic[:])
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	binary.LittleEndian.PutUint64(header[8:16], uint64(payload.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("stardust: writing snapshot header: %v", err)
	}
	if _, err := payload.WriteTo(w); err != nil {
		return fmt.Errorf("stardust: writing snapshot payload: %v", err)
	}
	return nil
}

// Load reconstructs a monitor from a Snapshot stream (SDS2, or legacy
// SDS1). Corrupt SDS2 payloads fail with ErrSnapshotCorrupt.
//
// Restored monitors start with the default (Reject) ingestion guard; use
// SetBadValuePolicy to re-apply a deployment's policy.
func Load(r io.Reader) (*Monitor, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("stardust: reading snapshot header: %v", err)
	}
	switch magic {
	case snapshotMagic:
		return loadV2(r)
	case snapshotMagicV1:
		return loadPayload(r)
	default:
		return nil, fmt.Errorf("stardust: not a monitor snapshot (bad magic %q)", magic[:])
	}
}

// loadV2 reads the CRC-framed container and hands the verified payload to
// the common decoder.
func loadV2(r io.Reader) (*Monitor, error) {
	var frame [12]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, fmt.Errorf("stardust: %w: incomplete frame header: %v", ErrSnapshotCorrupt, err)
	}
	sum := binary.LittleEndian.Uint32(frame[:4])
	length := binary.LittleEndian.Uint64(frame[4:12])
	// Read at most the declared length; a truncated stream yields fewer
	// bytes and fails the length check below rather than hanging or
	// over-reading.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("stardust: %w: reading payload: %v", ErrSnapshotCorrupt, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("stardust: %w: truncated payload (%d of %d bytes)",
			ErrSnapshotCorrupt, len(payload), length)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("stardust: %w: checksum mismatch (%08x != %08x)",
			ErrSnapshotCorrupt, got, sum)
	}
	return loadPayload(bytes.NewReader(payload))
}

// loadPayload decodes the mode + core summary shared by both formats.
func loadPayload(r io.Reader) (*Monitor, error) {
	var mode int32
	if err := binary.Read(r, binary.LittleEndian, &mode); err != nil {
		return nil, fmt.Errorf("stardust: reading snapshot header: %v", err)
	}
	if Mode(mode) != Online && Mode(mode) != Batch && Mode(mode) != SWAT {
		return nil, fmt.Errorf("stardust: snapshot has unknown mode %d", mode)
	}
	sum, err := core.LoadSummary(r)
	if err != nil {
		return nil, fmt.Errorf("stardust: %v", err)
	}
	// Metrics are runtime observability, not state: restored monitors start
	// from zeroed counters. Parallelism is likewise a runtime property —
	// restored monitors get the default worker count for this host.
	metrics := obs.NewMetrics()
	sum.SetMetrics(metrics)
	sum.SetParallel(defaultWorkers(0))
	return &Monitor{
		sum:     sum,
		mode:    Mode(mode),
		guard:   resilience.NewGuard(resilience.Config{}, sum.NumStreams()),
		metrics: metrics,
	}, nil
}

// Snapshotter is anything that can serialize monitor state — Monitor,
// SafeMonitor and SafeWatcher all qualify.
type Snapshotter interface {
	Snapshot(w io.Writer) error
}

// Checkpointer is the durable-snapshot surface: Checkpoint persists state
// to path crash-safely AND trims write-ahead-log segments the snapshot
// fully covers. Monitor, SafeMonitor, ShardedMonitor and SafeWatcher all
// implement it (trimming is a no-op without durability); the HTTP
// server's snapshot paths prefer it over plain WriteSnapshotFile so
// auto-snapshots bound WAL growth.
type Checkpointer interface {
	Checkpoint(path string) error
}

// Compile-time checks: every monitor flavor checkpoints.
var (
	_ Checkpointer = (*Monitor)(nil)
	_ Checkpointer = (*SafeMonitor)(nil)
	_ Checkpointer = (*ShardedMonitor)(nil)
	_ Checkpointer = (*SafeWatcher)(nil)
)

// WriteSnapshotFile persists a snapshot to path crash-safely: the bytes go
// to a temporary file that is fsynced before an atomic rename, and the
// previous snapshot (when present) is preserved as path+".bak". A crash at
// any point leaves a loadable state file: either the old snapshot, the
// new one, or (between the two renames) the backup that LoadFile falls
// back to.
func WriteSnapshotFile(s Snapshotter, path string) error {
	tmp := path + ".tmp"
	f, err := createSnapshotFile(tmp)
	if err != nil {
		return fmt.Errorf("stardust: creating snapshot temp file: %v", err)
	}
	err = s.Snapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("stardust: writing snapshot %s: %v", tmp, err)
	}
	if _, statErr := os.Stat(path); statErr == nil {
		if err := os.Rename(path, path+".bak"); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("stardust: rotating snapshot backup: %v", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("stardust: committing snapshot: %v", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// snapshotFile is the slice of *os.File WriteSnapshotFile needs — the
// seam fault-injection tests substitute to simulate a full or failing
// disk mid-snapshot.
type snapshotFile interface {
	io.Writer
	Sync() error
	Close() error
}

// createSnapshotFile opens the snapshot temp file. A package variable so
// tests can inject write and fsync failures; the production value is
// os.Create.
var createSnapshotFile = func(path string) (snapshotFile, error) {
	return os.Create(path)
}

// syncDir fsyncs a directory so the renames above are durable. Best
// effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// LoadFile restores a monitor from a snapshot file written by
// WriteSnapshotFile, falling back to path+".bak" when the primary file is
// corrupt, unreadable, or missing (a crash between WriteSnapshotFile's two
// renames leaves only the backup). When neither file exists the returned
// error matches fs.ErrNotExist, so callers can distinguish "no state yet"
// from real failures.
func LoadFile(path string) (*Monitor, error) {
	m, err := loadSnapshotPath(path)
	if err == nil {
		return m, nil
	}
	if bm, berr := loadSnapshotPath(path + ".bak"); berr == nil {
		return bm, nil
	} else if errors.Is(err, fs.ErrNotExist) && !errors.Is(berr, fs.ErrNotExist) {
		// The primary is simply absent but a backup exists and is bad:
		// report the backup's failure, it is the actionable one.
		return nil, berr
	}
	return nil, err
}

func loadSnapshotPath(path string) (*Monitor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return m, nil
}
