package stardust

import (
	"encoding/binary"
	"fmt"
	"io"

	"stardust/internal/core"
)

// snapshotMagic guards against loading unrelated files.
var snapshotMagic = [4]byte{'S', 'D', 'S', '1'}

// Snapshot serializes the monitor's full state — configuration, raw
// histories and every level's feature boxes — so a monitoring process can
// restart without losing its summaries. The per-level indexes are rebuilt
// on load.
func (m *Monitor) Snapshot(w io.Writer) error {
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("stardust: writing snapshot header: %v", err)
	}
	if err := binary.Write(w, binary.LittleEndian, int32(m.mode)); err != nil {
		return fmt.Errorf("stardust: writing snapshot header: %v", err)
	}
	return m.sum.Snapshot(w)
}

// Load reconstructs a monitor from a Snapshot stream.
func Load(r io.Reader) (*Monitor, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("stardust: reading snapshot header: %v", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("stardust: not a monitor snapshot (bad magic %q)", magic[:])
	}
	var mode int32
	if err := binary.Read(r, binary.LittleEndian, &mode); err != nil {
		return nil, fmt.Errorf("stardust: reading snapshot header: %v", err)
	}
	if Mode(mode) != Online && Mode(mode) != Batch && Mode(mode) != SWAT {
		return nil, fmt.Errorf("stardust: snapshot has unknown mode %d", mode)
	}
	sum, err := core.LoadSummary(r)
	if err != nil {
		return nil, fmt.Errorf("stardust: %v", err)
	}
	return &Monitor{sum: sum, mode: Mode(mode)}, nil
}
