package stardust

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"stardust/internal/gen"
)

func newWatcher(t *testing.T, cfg Config) *Watcher {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewWatcher(m)
}

func TestWatchAggregateValidation(t *testing.T) {
	w := newWatcher(t, Config{Streams: 2, W: 4, Levels: 3, Transform: Sum})
	if _, err := w.WatchAggregate(5, 8, 10, true); err == nil {
		t.Fatal("bad stream should fail")
	}
	if _, err := w.WatchAggregate(0, 7, 10, true); err == nil {
		t.Fatal("un-decomposable window should fail")
	}
	id, err := w.WatchAggregate(0, 8, 10, true)
	if err != nil || id == 0 {
		t.Fatalf("valid watch failed: %v", err)
	}
}

// TestWatchAggregateEdgeTriggered: one alarm event per burst episode plus
// one cleared event, regardless of episode length.
func TestWatchAggregateEdgeTriggered(t *testing.T) {
	w := newWatcher(t, Config{Streams: 1, W: 4, Levels: 3, Transform: Sum, BoxCapacity: 2})
	id, err := w.WatchAggregate(0, 8, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	var alarms, cleared int
	push := func(v float64) {
		events, err := w.Push(0, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			if e.WatchID != id {
				t.Fatalf("event for unknown watch: %+v", e)
			}
			switch e.Kind {
			case EventAggregate:
				alarms++
				if e.Value < 100 {
					t.Fatalf("alarm below threshold: %+v", e)
				}
			case EventAggregateCleared:
				cleared++
			}
		}
	}
	for i := 0; i < 20; i++ {
		push(2) // quiet: window sum 16
	}
	for i := 0; i < 10; i++ {
		push(50) // burst: sums cross 100 quickly
	}
	for i := 0; i < 20; i++ {
		push(2) // quiet again
	}
	if alarms != 1 {
		t.Fatalf("edge-triggered alarms = %d, want 1", alarms)
	}
	if cleared != 1 {
		t.Fatalf("cleared events = %d, want 1", cleared)
	}
}

// TestWatchAggregateLevelTriggered: without edge triggering, every alarming
// step emits.
func TestWatchAggregateLevelTriggered(t *testing.T) {
	w := newWatcher(t, Config{Streams: 1, W: 4, Levels: 2, Transform: Sum})
	if _, err := w.WatchAggregate(0, 4, 100, false); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 10; i++ {
		events, err := w.Push(0, 50) // every full window sums 200
		if err != nil {
			t.Fatal(err)
		}
		total += len(events)
	}
	// Windows complete from t=3 on: 7 alarming steps.
	if total != 7 {
		t.Fatalf("level-triggered events = %d, want 7", total)
	}
}

// TestWatchPatternReportsNewMatchesOnce: a planted pattern is reported when
// it completes, exactly once, with the right stream and end time.
func TestWatchPatternReportsNewMatchesOnce(t *testing.T) {
	w := newWatcher(t, Config{
		Streams: 2, W: 8, Levels: 3, Transform: DWT, Mode: Batch,
		Coefficients: 4, Normalization: NormUnit, Rmax: 150, History: 600,
	})
	rng := rand.New(rand.NewSource(271))
	data := gen.RandomWalks(rng, 2, 400)
	// The pattern: what stream 1 will trace at positions 200..239.
	pattern := make([]float64, 40)
	copy(pattern, data[1][200:240])
	id, err := w.WatchPattern(pattern, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var hits []Event
	for i := 0; i < 400; i++ {
		for s := 0; s < 2; s++ {
			events, err := w.Push(s, data[s][i])
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events {
				if e.Kind == EventPattern && e.WatchID == id {
					hits = append(hits, e)
				}
			}
		}
	}
	foundPlanted := false
	seen := map[[2]int64]int{}
	for _, h := range hits {
		if h.Stream == 1 && h.Time == 239 {
			foundPlanted = true
		}
		seen[[2]int64{int64(h.Stream), h.Time}]++
	}
	if !foundPlanted {
		t.Fatalf("planted pattern never reported; hits = %v", hits)
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("match %v reported %d times", k, n)
		}
	}
}

func TestWatchPatternValidation(t *testing.T) {
	w := newWatcher(t, Config{
		Streams: 1, W: 8, Levels: 2, Transform: DWT, Mode: Batch,
		Coefficients: 4, Normalization: NormUnit, Rmax: 10,
	})
	if _, err := w.WatchPattern(nil, 0.1); err == nil {
		t.Fatal("empty pattern should fail")
	}
	if _, err := w.WatchPattern(make([]float64, 32), 0); err == nil {
		t.Fatal("zero radius should fail")
	}
	if _, err := w.WatchPattern(make([]float64, 4), 0.1); err == nil {
		t.Fatal("too-short pattern should fail")
	}
}

func TestUnwatch(t *testing.T) {
	w := newWatcher(t, Config{Streams: 1, W: 4, Levels: 2, Transform: Sum})
	id, _ := w.WatchAggregate(0, 4, 10, true)
	if !w.Unwatch(id) {
		t.Fatal("unwatch failed")
	}
	if w.Unwatch(id) {
		t.Fatal("double unwatch should fail")
	}
	// No events after unwatching.
	for i := 0; i < 10; i++ {
		events, err := w.Push(0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != 0 {
			t.Fatal("unwatched query still fired")
		}
	}
}

// TestWatchIDsNeverReused: a watch id retired by Unwatch must never be
// handed out again — consumers key alert state and spec attribution by
// id, so recycling one would silently re-route another watch's events.
func TestWatchIDsNeverReused(t *testing.T) {
	w := newWatcher(t, Config{Streams: 2, W: 4, Levels: 3, Transform: Sum})
	seen := make(map[int]bool)
	claim := func(id int) {
		t.Helper()
		if seen[id] {
			t.Fatalf("watch id %d issued twice", id)
		}
		seen[id] = true
	}
	var ids []int
	for i := 0; i < 5; i++ {
		id, err := w.WatchAggregate(i%2, 4, 10, true)
		if err != nil {
			t.Fatal(err)
		}
		claim(id)
		ids = append(ids, id)
	}
	for _, id := range ids {
		if !w.Unwatch(id) {
			t.Fatalf("unwatch %d failed", id)
		}
	}
	// Fresh installs after a full teardown still get fresh ids.
	for i := 0; i < 5; i++ {
		id, err := w.WatchAggregate(0, 8, 5, false)
		if err != nil {
			t.Fatal(err)
		}
		claim(id)
	}
}

// TestConcurrentPushAndUnwatch races producers against watch churn on a
// SafeWatcher: installs and unwatches interleave with pushes, which under
// -race pins the locking of the install/evaluate/retire paths.
func TestConcurrentPushAndUnwatch(t *testing.T) {
	m, err := New(Config{Streams: 4, W: 4, Levels: 3, Transform: Sum, BoxCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSafeWatcher(m)
	sw.SetEventSink(func([]Event) {})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			id, err := sw.WatchAggregate(i%4, 4, 5, i%2 == 0)
			if err != nil {
				t.Error(err)
				return
			}
			if !sw.Unwatch(id) {
				t.Errorf("unwatch %d failed", id)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := sw.Ingest(stream, float64(i%7)); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	<-done
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventAggregate: "aggregate-alarm", EventAggregateCleared: "aggregate-cleared", EventPattern: "pattern-match",
	} {
		if k.String() != want {
			t.Errorf("%d prints %q", int(k), k.String())
		}
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should still print")
	}
}

// TestSafeWatcherConcurrent hammers a SafeWatcher from parallel producers;
// run with -race.
func TestSafeWatcherConcurrent(t *testing.T) {
	m, err := New(Config{Streams: 4, W: 4, Levels: 3, Transform: Sum})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSafeWatcher(m)
	for s := 0; s < 4; s++ {
		if _, err := sw.WatchAggregate(s, 8, 300, true); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan int, 4)
	for s := 0; s < 4; s++ {
		go func(stream int) {
			alarms := 0
			for i := 0; i < 500; i++ {
				v := 2.0
				if i >= 200 && i < 260 {
					v = 60
				}
				events, err := sw.Push(stream, v)
				if err != nil {
					t.Error(err)
					break
				}
				for _, e := range events {
					if e.Kind == EventAggregate {
						alarms++
					}
				}
			}
			done <- alarms
		}(s)
	}
	total := 0
	for s := 0; s < 4; s++ {
		total += <-done
	}
	if total != 4 {
		t.Fatalf("edge-triggered alarms = %d, want 4 (one per stream)", total)
	}
	if ok := sw.Unwatch(1); !ok {
		t.Fatal("unwatch failed")
	}
}

// TestPushPartialEventsOnError pins the Watcher.Push partial-event
// contract: when a standing query fails mid-evaluation, the events already
// triggered by this push are returned ALONGSIDE the error, and callers
// must consume them (they will not be re-delivered).
func TestPushPartialEventsOnError(t *testing.T) {
	// History 16 covers the largest level window but NOT the decomposable
	// window 24 (= 8 + 16), so a window-24 watch registers fine yet fails
	// exact verification once it becomes an alarm candidate.
	w := newWatcher(t, Config{Streams: 1, W: 8, Levels: 2, Transform: Sum, History: 16})
	if _, err := w.WatchAggregate(0, 8, 10, false); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WatchAggregate(0, 24, 10, false); err != nil {
		t.Fatal(err)
	}
	var events []Event
	var pushErr error
	for i := 0; i < 30 && pushErr == nil; i++ {
		events, pushErr = w.Push(0, 50)
	}
	if pushErr == nil {
		t.Fatal("unverifiable watch never errored")
	}
	// The window-8 watch fired before the window-24 watch errored; its
	// event rides along with the error.
	if len(events) != 1 {
		t.Fatalf("got %d events alongside error %v, want 1", len(events), pushErr)
	}
	if events[0].Kind != EventAggregate || events[0].Stream != 0 {
		t.Fatalf("partial event = %+v", events[0])
	}
}

// TestSafeWatcherAppendAllPartialEvents pins the same contract one level
// up: a mid-loop ingestion error returns the events of earlier streams in
// the arrival and leaves later streams untouched.
func TestSafeWatcherAppendAllPartialEvents(t *testing.T) {
	m, err := New(Config{Streams: 3, W: 4, Levels: 2, Transform: Sum})
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSafeWatcher(m)
	if _, err := sw.WatchAggregate(0, 4, 100, false); err != nil {
		t.Fatal(err)
	}
	// Warm up so the stream-0 watch can fire.
	for i := 0; i < 4; i++ {
		if _, err := sw.AppendAll([]float64{50, 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	events, err := sw.AppendAll([]float64{50, math.NaN(), 1})
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("err = %v, want ErrBadValue", err)
	}
	if len(events) == 0 {
		t.Fatal("no partial events returned alongside the error")
	}
	if events[0].Stream != 0 {
		t.Fatalf("partial event stream = %d", events[0].Stream)
	}
	// Stream 0 advanced, stream 1 was rejected, stream 2 never pushed.
	if m.Now(0) != 4 || m.Now(1) != 3 || m.Now(2) != 3 {
		t.Fatalf("clocks = %d,%d,%d", m.Now(0), m.Now(1), m.Now(2))
	}
}

// TestWatchPatternSeenBounded: the pattern dedup set must not grow with
// the lifetime of the stream. A constant stream matches a constant
// pattern at every alignment, so without pruning the seen map would
// accumulate one key per reported end forever; with pruning it stays
// proportional to the retained-history alignments.
func TestWatchPatternSeenBounded(t *testing.T) {
	const hist = 128
	w := newWatcher(t, Config{
		Streams: 1, W: 8, Levels: 3, Transform: DWT, Mode: Batch,
		Coefficients: 4, History: hist,
	})
	pattern := make([]float64, 16)
	for i := range pattern {
		pattern[i] = 1
	}
	if _, err := w.WatchPattern(pattern, 0.01); err != nil {
		t.Fatal(err)
	}
	reported := 0
	for i := 0; i < 2000; i++ {
		events, err := w.Push(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		reported += len(events)
	}
	if reported < 200 {
		t.Fatalf("only %d matches reported; stream/pattern do not exercise dedup", reported)
	}
	bound := hist + len(pattern)
	if got := len(w.patterns[0].seen); got > bound {
		t.Fatalf("seen map holds %d keys after %d reports, want <= %d (unbounded growth)",
			got, reported, bound)
	}
}

// TestWatchCorrelationReportsPairsOnce: a standing correlation query
// reports correlated pairs as detection rounds run, each (pair, feature
// time) combination exactly once.
func TestWatchCorrelationReportsPairsOnce(t *testing.T) {
	w := newWatcher(t, Config{
		Streams: 4, W: 16, Levels: 3, Transform: DWT, Mode: Batch,
		Coefficients: 4, Normalization: NormZ,
	})
	id, err := w.WatchCorrelation(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	data := gen.CorrelatedWalks(rng, 4, 512, 2, 0.05)
	var hits []Event
	for i := 0; i < 512; i++ {
		for s := 0; s < 4; s++ {
			events, err := w.Push(s, data[s][i])
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range events {
				if e.Kind == EventCorrelation && e.WatchID == id {
					hits = append(hits, e)
				}
			}
		}
	}
	if len(hits) == 0 {
		t.Fatal("no correlation events for correlated walk groups")
	}
	seen := map[[4]int64]int{}
	for _, h := range hits {
		if h.Stream == h.StreamB {
			t.Fatalf("self-pair reported: %+v", h)
		}
		if math.Abs(h.Value) > 1 {
			t.Fatalf("correlation coefficient out of range: %+v", h)
		}
		seen[[4]int64{int64(h.Stream), int64(h.StreamB), h.Time, h.TimeB}]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("pair %v reported %d times", k, n)
		}
	}
}

func TestWatchCorrelationValidation(t *testing.T) {
	w := newWatcher(t, Config{
		Streams: 2, W: 16, Levels: 3, Transform: DWT, Mode: Batch,
		Coefficients: 4, Normalization: NormZ,
	})
	if _, err := w.WatchCorrelation(0, 0); err == nil {
		t.Fatal("zero radius should fail")
	}
	if _, err := w.WatchCorrelation(99, 0.5); err == nil {
		t.Fatal("bad level should fail")
	}
	id, err := w.WatchCorrelation(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Unwatch(id) {
		t.Fatal("Unwatch failed to find the correlation watch")
	}
}
