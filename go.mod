module stardust

go 1.22
