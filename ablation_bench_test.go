package stardust

import (
	"fmt"
	"math/rand"
	"testing"

	"stardust/internal/core"
	"stardust/internal/gen"
	"stardust/internal/mbr"
	"stardust/internal/rstar"
	"stardust/internal/wavelet"
)

// Ablations for the design choices the paper analyzes: box capacity c
// (space/precision), update-rate schedules (online/batch/SWAT), the two
// MBR wavelet transforms (Online I corner sweep vs Online II bound) and
// the index fan-out. Quality side effects are emitted as custom metrics so
// `go test -bench Ablation` doubles as the ablation report.

// BenchmarkAblationBoxCapacity sweeps c, reporting per-item time plus the
// aggregate-query screening precision and summary box count the capacity
// buys.
func BenchmarkAblationBoxCapacity(b *testing.B) {
	rng := rand.New(rand.NewSource(201))
	data := gen.Burst(rng, 6000, 8, 40)
	for _, c := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			var precision, boxes float64
			b.ReportAllocs()
			for iter := 0; iter < b.N; iter++ {
				sum, err := core.NewSummary(core.Config{
					W: 8, Levels: 6, Transform: core.TransformSum,
					BoxCapacity: c, HistoryN: 1024,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				var cand, confirmed int
				for i, v := range data {
					sum.Append(0, v)
					if i < 120 || i%7 != 0 {
						continue
					}
					res, err := sum.AggregateQuery(0, 120, 1400)
					if err != nil {
						b.Fatal(err)
					}
					if res.Candidate {
						cand++
						if res.Alarm {
							confirmed++
						}
					}
				}
				if cand > 0 {
					precision = float64(confirmed) / float64(cand)
				} else {
					precision = 1
				}
				boxes = float64(sum.Stats().TotalBoxes())
			}
			b.ReportMetric(precision, "precision")
			b.ReportMetric(boxes, "boxes")
		})
	}
}

// BenchmarkAblationRateSchedule compares the three maintenance schedules'
// per-item cost and retained box counts.
func BenchmarkAblationRateSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(202))
	data := gen.RandomWalk(rng, 4096)
	schedules := []struct {
		name string
		rate core.RateFunc
	}{
		{"online", core.RateOnline},
		{"batch", core.RateBatch(8)},
		{"swat", core.RateSWAT},
	}
	for _, sc := range schedules {
		b.Run(sc.name, func(b *testing.B) {
			var boxes float64
			b.ReportAllocs()
			for iter := 0; iter < b.N; iter++ {
				sum, err := core.NewSummary(core.Config{
					W: 8, Levels: 5, Transform: core.TransformSum,
					Rate: sc.rate, HistoryN: 512,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				for _, v := range data {
					sum.Append(0, v)
				}
				boxes = float64(sum.Stats().TotalBoxes())
			}
			b.ReportMetric(boxes, "boxes")
		})
	}
}

// BenchmarkAblationOnlineIvsII compares the corner-enumeration transform
// (Θ(2^{2f}·f)) with the low/high bound (Θ(f)) on the D4 filter, where the
// two genuinely differ, reporting the tightness (volume ratio ≤ 1 means
// Online I is tighter).
func BenchmarkAblationOnlineIvsII(b *testing.B) {
	rng := rand.New(rand.NewSource(203))
	const dim = 8 // f' = 2f with f = 4
	boxes := make([]mbr.MBR, 256)
	for i := range boxes {
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for d := 0; d < dim; d++ {
			c := rng.Float64()*10 - 5
			w := rng.Float64()
			lo[d], hi[d] = c-w, c+w
		}
		boxes[i] = mbr.FromBounds(lo, hi)
	}
	filt := wavelet.Daubechies4()

	b.Run("onlineII", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wavelet.TransformMBROnlineII(boxes[i%len(boxes)], filt)
		}
	})
	b.Run("onlineI", func(b *testing.B) {
		b.ReportAllocs()
		var ratio float64
		for i := 0; i < b.N; i++ {
			in := boxes[i%len(boxes)]
			o1 := wavelet.TransformMBROnlineI(in, filt)
			o2 := wavelet.TransformMBROnlineII(in, filt)
			if v2 := o2.Volume(); v2 > 0 {
				ratio += o1.Volume() / v2
			}
		}
		b.ReportMetric(ratio/float64(b.N), "tightness-ratio")
	})
}

// BenchmarkAblationIndexFanout sweeps the R*-tree node capacity.
func BenchmarkAblationIndexFanout(b *testing.B) {
	rng := rand.New(rand.NewSource(204))
	type item struct {
		box mbr.MBR
		id  int
	}
	items := make([]item, 20000)
	for i := range items {
		p := []float64{rng.Float64() * 100, rng.Float64() * 100}
		items[i] = item{box: mbr.FromPoint(p), id: i}
	}
	for _, fanout := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("M=%d", fanout), func(b *testing.B) {
			b.ReportAllocs()
			for iter := 0; iter < b.N; iter++ {
				tr := rstar.New[int](2, rstar.Options{MaxEntries: fanout})
				for _, it := range items {
					tr.Insert(it.box, it.id)
				}
				// A handful of queries to expose the search-side tradeoff.
				for q := 0; q < 100; q++ {
					center := []float64{rng.Float64() * 100, rng.Float64() * 100}
					tr.SearchSphere(center, 2, func(_ mbr.MBR, _ int) bool { return true })
				}
			}
		})
	}
}

// BenchmarkAblationBatchQueryLevel sweeps the resolution level Algorithm 4
// queries at — the paper's Section 6.2.1 adaptation: lower levels increase
// the multi-piece refinement factor p (tighter piece radius, better for
// high-selectivity queries) while higher levels carry coarser trend
// information in fewer candidates.
func BenchmarkAblationBatchQueryLevel(b *testing.B) {
	rng := rand.New(rand.NewSource(205))
	const streams, n = 6, 1500
	data := gen.HostLoads(rng, streams, n)
	sum, err := core.NewSummary(core.Config{
		W: 16, Levels: 5, Transform: core.TransformDWT, F: 4,
		Normalization: core.NormUnit, Rmax: 4,
		Rate: core.RateBatch(16), Direct: true, HistoryN: n,
	}, streams)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for s := 0; s < streams; s++ {
			sum.Append(s, data[s][i])
		}
	}
	queries := make([][]float64, 12)
	for qi := range queries {
		src := rng.Intn(streams)
		start := rng.Intn(n - 200)
		q := make([]float64, 200)
		for i := range q {
			q[i] = data[src][start+i] + 0.1*(rng.Float64()-0.5)
		}
		queries[qi] = q
	}
	maxJ, err := sum.MaxBatchLevel(200)
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j <= maxJ; j++ {
		b.Run(fmt.Sprintf("level=%d", j), func(b *testing.B) {
			var prec, cands float64
			for iter := 0; iter < b.N; iter++ {
				prec, cands = 0, 0
				for _, q := range queries {
					res, err := sum.PatternQueryBatchAt(q, 0.08, j)
					if err != nil {
						b.Fatal(err)
					}
					prec += res.Precision()
					cands += float64(len(res.Candidates))
				}
				prec /= float64(len(queries))
				cands /= float64(len(queries))
			}
			b.ReportMetric(prec, "precision")
			b.ReportMetric(cands, "candidates")
		})
	}
}
